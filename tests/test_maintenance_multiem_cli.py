"""Tests for cluster-stability maintenance, MultiEM and the CLI."""

import numpy as np
import pytest

from repro.baselines import MultiEM
from repro.cli import build_parser, main as cli_main
from repro.core import (
    MoRER,
    adjusted_rand_index,
    cluster_conductance,
    perturbation_stability,
    repository_health,
    silhouette_scores,
)
from repro.datasets import generate_music_dataset
from repro.ml import precision_recall_f1
from tests.conftest import make_problem_family


# -- stability measures -------------------------------------------------------------


def _fitted_morer():
    family = make_problem_family()
    morer = MoRER(b_total=100, b_min=20, random_state=0)
    morer.fit(family)
    return morer, family


def test_silhouette_separated_regimes_positive():
    morer, family = _fitted_morer()
    scores = silhouette_scores(morer.problem_graph, morer.clusters_)
    assert set(scores) == {p.key for p in family}
    assert np.mean(list(scores.values())) > 0.0
    assert all(-1.0 <= s <= 1.0 for s in scores.values())


def test_conductance_bounds_and_ordering():
    morer, _ = _fitted_morer()
    for cluster in morer.clusters_:
        value = cluster_conductance(morer.problem_graph, cluster)
        assert 0.0 <= value <= 1.0
    # The whole vertex set has conductance 0 (no boundary).
    everything = set()
    for cluster in morer.clusters_:
        everything |= cluster
    assert cluster_conductance(morer.problem_graph, everything) == 0.0


def test_adjusted_rand_index_identical_and_disjoint():
    a = [{"x", "y"}, {"z"}]
    assert adjusted_rand_index(a, a) == pytest.approx(1.0)
    flipped = [{"x"}, {"y", "z"}]
    assert adjusted_rand_index(a, flipped) < 1.0


def test_adjusted_rand_index_requires_same_keys():
    with pytest.raises(ValueError, match="different key sets"):
        adjusted_rand_index([{"a"}], [{"b"}])


def test_perturbation_stability_on_clear_structure():
    morer, _ = _fitted_morer()
    stability = perturbation_stability(
        morer.problem_graph, n_runs=3, random_state=0
    )
    # Two well-separated regimes recluster identically under any seed.
    assert stability == pytest.approx(1.0)


def test_repository_health_report():
    morer, _ = _fitted_morer()
    report = repository_health(morer, n_runs=2)
    assert len(report) == len(morer.repository)
    for row in report:
        assert {"cluster_id", "n_problems", "mean_silhouette",
                "conductance", "labels_spent",
                "perturbation_stability"} <= set(row)


def test_repository_health_unfitted():
    with pytest.raises(RuntimeError, match="not fitted"):
        repository_health(MoRER())


# -- MultiEM -----------------------------------------------------------------------


def test_multiem_matches_multisource_corpus():
    dataset = generate_music_dataset(n_entities=60, random_state=0)
    matcher = MultiEM(threshold=0.4)
    entities = matcher.match([list(s.records) for s in dataset.sources])
    # Evaluate on true cross-source pairs.
    truths, predictions = [], []
    sources = dataset.sources
    for i in range(len(sources)):
        for j in range(i + 1, len(sources)):
            for a in sources[i].records[:30]:
                for b in sources[j].records[:30]:
                    truths.append(int(a.entity_id == b.entity_id))
                    predictions.append(
                        int(entities.connected(a.record_id, b.record_id))
                    )
    p, r, f1 = precision_recall_f1(np.array(truths), np.array(predictions))
    assert f1 > 0.5  # unsupervised, hierarchical — decent but not MoRER


def test_multiem_threshold_validation():
    with pytest.raises(ValueError, match="threshold"):
        MultiEM(threshold=0.0)
    with pytest.raises(ValueError, match="source"):
        MultiEM().match([])


def test_multiem_predict_pairs():
    matcher = MultiEM(threshold=0.3)
    sources = [
        [{"id": "a0", "title": "alpha beta gamma"}],
        [{"id": "b0", "title": "alpha beta gamma"},
         {"id": "b1", "title": "totally different thing"}],
    ]
    entities = matcher.match(sources)
    predictions = matcher.predict_pairs(
        entities, [("a0", "b0"), ("a0", "b1")]
    )
    assert predictions.tolist() == [1, 0]


def test_multiem_odd_source_count():
    sources = [
        [{"id": f"s{k}r0", "title": f"item {k} common"}] for k in range(3)
    ]
    entities = MultiEM(threshold=0.95).match(sources)
    assert entities.groups()  # runs with an odd partition count


# -- CLI -----------------------------------------------------------------------------


def test_cli_parser_choices():
    parser = build_parser()
    args = parser.parse_args(["table2", "--scale", "0.1"])
    assert args.experiment == "table2"
    assert args.scale == 0.1
    with pytest.raises(SystemExit):
        parser.parse_args(["table9"])


def test_cli_runs_table2(capsys):
    cli_main(["table2", "--scale", "0.1"])
    output = capsys.readouterr().out
    assert "Table 2" in output
    assert "dexter" in output


def test_cli_runs_fig2(capsys):
    cli_main(["fig2", "--scale", "0.15"])
    output = capsys.readouterr().out
    assert "Fig. 2" in output


def test_cli_parser_serve_options():
    parser = build_parser()
    args = parser.parse_args(["serve", "--demo", "--port", "0"])
    assert args.experiment == "serve"
    assert args.demo == 24  # bare --demo takes the default size
    args = parser.parse_args([
        "serve", "--store", "runs/store", "--max-batch-size", "8",
        "--max-wait-ms", "5", "--max-queue-depth", "32",
    ])
    assert args.store == "runs/store"
    assert args.max_batch_size == 8
    assert args.max_wait_ms == 5.0
    assert args.max_queue_depth == 32


def test_cli_serve_requires_a_source():
    with pytest.raises(SystemExit, match="--store DIR or --demo"):
        cli_main(["serve"])
    with pytest.raises(SystemExit, match="mutually exclusive"):
        cli_main(["serve", "--store", "x", "--demo", "4"])
