"""Random forest and bagging committee tests."""

import numpy as np
import pytest

from repro.ml import (
    BaggingClassifier,
    DecisionTreeClassifier,
    RandomForestClassifier,
)


def _data(n=300, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 5))
    y = ((X[:, 0] + X[:, 2]) > 0).astype(int)
    return X, y


def test_forest_beats_chance():
    X, y = _data()
    forest = RandomForestClassifier(n_estimators=15, random_state=0).fit(X, y)
    assert forest.score(X, y) > 0.9


def test_forest_proba_shape_and_normalisation():
    X, y = _data()
    forest = RandomForestClassifier(n_estimators=8, random_state=0).fit(X, y)
    proba = forest.predict_proba(X[:10])
    assert proba.shape == (10, 2)
    assert np.allclose(proba.sum(axis=1), 1.0)


def test_forest_deterministic_with_seed():
    X, y = _data(150)
    f1 = RandomForestClassifier(n_estimators=6, random_state=3).fit(X, y)
    f2 = RandomForestClassifier(n_estimators=6, random_state=3).fit(X, y)
    assert np.array_equal(f1.predict(X), f2.predict(X))


def test_forest_n_estimators_validated():
    with pytest.raises(ValueError, match="n_estimators"):
        RandomForestClassifier(n_estimators=0).fit(*_data(30))


def test_forest_without_bootstrap():
    X, y = _data(120)
    forest = RandomForestClassifier(
        n_estimators=4, bootstrap=False, random_state=0
    ).fit(X, y)
    assert forest.score(X, y) > 0.9


def test_forest_handles_heavy_imbalance():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(200, 4))
    y = np.zeros(200, dtype=int)
    y[:5] = 1
    X[:5] += 4.0
    forest = RandomForestClassifier(n_estimators=10, random_state=0).fit(X, y)
    assert set(np.unique(forest.predict(X))) <= {0, 1}
    # The rare class must be representable (stratified bootstrap).
    assert forest.predict_proba(X[:5])[:, 1].mean() > 0.3


def test_bagging_vote_matrix_shape():
    X, y = _data(100)
    committee = BaggingClassifier(
        base_estimator=DecisionTreeClassifier(max_depth=4),
        n_estimators=7, random_state=0,
    ).fit(X, y)
    votes = committee.vote_matrix(X[:9])
    assert votes.shape == (7, 9)


def test_bagging_uncertainty_profile():
    """Vote shares are in [0,1] and ambiguous points are uncertain."""
    X, y = _data(400, seed=2)
    committee = BaggingClassifier(n_estimators=11, random_state=0).fit(X, y)
    proba = committee.predict_proba(X)
    assert proba.min() >= 0 and proba.max() <= 1
    share = proba[:, 1]
    uncertainty = share * (1 - share)
    # Points near the true boundary should be more uncertain on average.
    boundary = np.abs(X[:, 0] + X[:, 2]) < 0.2
    if boundary.sum() > 5:
        assert uncertainty[boundary].mean() >= uncertainty.mean() * 0.5


def test_bagging_default_base_estimator():
    X, y = _data(80)
    committee = BaggingClassifier(n_estimators=3, random_state=0).fit(X, y)
    assert committee.score(X, y) > 0.7


def test_forest_serialisation_roundtrip():
    import json

    X, y = _data(100)
    forest = RandomForestClassifier(n_estimators=4, random_state=1).fit(X, y)
    rebuilt = RandomForestClassifier.from_dict(
        json.loads(json.dumps(forest.to_dict()))
    )
    assert np.array_equal(forest.predict(X), rebuilt.predict(X))
    proba_diff = np.abs(
        forest.predict_proba(X) - rebuilt.predict_proba(X)
    ).max()
    assert proba_diff < 1e-12
