"""Gaussian mixture + estimator base-class tests (vs scipy oracle)."""

import numpy as np
import pytest
from scipy import stats

from repro.ml import GaussianMixture, clone
from repro.ml.base import BaseEstimator


def _two_blobs(n=300, separation=4.0, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(0.0, 0.5, size=(n // 2, 2))
    b = rng.normal(separation, 0.5, size=(n // 2, 2))
    return np.vstack([a, b])


def test_gmm_recovers_two_blobs():
    X = _two_blobs()
    gmm = GaussianMixture(n_components=2, random_state=0).fit(X)
    means = np.sort(gmm.means_[:, 0])
    assert means[0] == pytest.approx(0.0, abs=0.3)
    assert means[1] == pytest.approx(4.0, abs=0.3)
    assert gmm.weights_.sum() == pytest.approx(1.0)


def test_gmm_responsibilities_normalised():
    X = _two_blobs(200)
    gmm = GaussianMixture(n_components=2, random_state=0).fit(X)
    resp = gmm.predict_proba(X)
    assert np.allclose(resp.sum(axis=1), 1.0)


def test_gmm_log_likelihood_matches_scipy_single_component():
    """With one component the mixture is one diagonal Gaussian; the log
    likelihood must match scipy's."""
    rng = np.random.default_rng(1)
    X = rng.normal(2.0, 1.5, size=(400, 1))
    gmm = GaussianMixture(n_components=1, random_state=0, reg_covar=1e-9)
    gmm.fit(X)
    ours = gmm.score_samples(X[:20]).sum()
    scipy_ll = stats.norm.logpdf(
        X[:20, 0], loc=gmm.means_[0, 0], scale=np.sqrt(gmm.variances_[0, 0])
    ).sum()
    assert ours == pytest.approx(scipy_ll, rel=1e-6)


def test_gmm_needs_enough_samples():
    with pytest.raises(ValueError, match="n_components"):
        GaussianMixture(n_components=5).fit(np.ones((3, 2)))


def test_gmm_em_monotone_likelihood():
    X = _two_blobs(150, separation=2.0, seed=3)
    g1 = GaussianMixture(n_components=2, max_iter=1, random_state=0).fit(X)
    g50 = GaussianMixture(n_components=2, max_iter=50, random_state=0).fit(X)
    assert g50.lower_bound_ >= g1.lower_bound_ - 1e-6


def test_gmm_predict_labels_components():
    X = _two_blobs(100)
    gmm = GaussianMixture(n_components=2, random_state=0).fit(X)
    labels = gmm.predict(X)
    # Points of the same blob should overwhelmingly share a component.
    first = labels[:50]
    assert (first == np.round(first.mean())).mean() > 0.9


# -- base estimator ---------------------------------------------------------------


class _Stub(BaseEstimator):
    def __init__(self, alpha=1.0, beta="x"):
        self.alpha = alpha
        self.beta = beta


def test_get_params_reflects_constructor():
    assert _Stub(alpha=3).get_params() == {"alpha": 3, "beta": "x"}


def test_set_params_validates_names():
    stub = _Stub()
    stub.set_params(alpha=9)
    assert stub.alpha == 9
    with pytest.raises(ValueError, match="invalid parameter"):
        stub.set_params(gamma=1)


def test_clone_is_unfitted_copy():
    stub = _Stub(alpha=7)
    stub.fitted_thing_ = np.arange(3)
    twin = clone(stub)
    assert twin.alpha == 7
    assert not hasattr(twin, "fitted_thing_")


def test_to_dict_from_dict_roundtrip_with_arrays():
    stub = _Stub(alpha=2.5)
    stub.weights_ = np.array([[1.0, 2.0], [3.0, 4.0]])
    stub.names_ = ["a", "b"]
    state = stub.to_dict()
    rebuilt = _Stub.from_dict(state)
    assert np.array_equal(rebuilt.weights_, stub.weights_)
    assert rebuilt.names_ == ["a", "b"]


def test_from_dict_rejects_wrong_class():
    state = _Stub().to_dict()
    state["__class__"] = "SomethingElse"
    with pytest.raises(ValueError, match="state is for"):
        _Stub.from_dict(state)


def test_repr_contains_params():
    assert "alpha=1.0" in repr(_Stub())
