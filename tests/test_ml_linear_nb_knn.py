"""LogisticRegression, GaussianNB and kNN tests."""

import numpy as np
import pytest

from repro.ml import (
    GaussianNB,
    KNeighborsClassifier,
    LogisticRegression,
    NearestNeighbors,
)
from repro.ml.neighbors import pairwise_distances


def _data(n=250, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 3))
    y = (X @ np.array([1.5, -2.0, 0.5]) > 0).astype(int)
    return X, y


# -- logistic regression ------------------------------------------------------


def test_logreg_separable_accuracy():
    X, y = _data()
    model = LogisticRegression(max_iter=500).fit(X, y)
    assert model.score(X, y) > 0.95


def test_logreg_proba_calibration_direction():
    X, y = _data()
    model = LogisticRegression().fit(X, y)
    proba = model.predict_proba(X)[:, 1]
    assert proba[y == 1].mean() > proba[y == 0].mean()


def test_logreg_single_class_degenerates_gracefully():
    X = np.random.default_rng(0).normal(size=(20, 3))
    y = np.ones(20, dtype=int)
    model = LogisticRegression().fit(X, y)
    assert np.all(model.predict(X) == 1)


def test_logreg_multiclass_rejected():
    X = np.random.default_rng(0).normal(size=(30, 2))
    y = np.arange(30) % 3
    with pytest.raises(ValueError, match="binary"):
        LogisticRegression().fit(X, y)


def test_logreg_balanced_improves_minority_recall():
    rng = np.random.default_rng(3)
    X = rng.normal(size=(400, 2))
    y = np.zeros(400, dtype=int)
    y[:40] = 1
    X[:40] += 1.2
    plain = LogisticRegression().fit(X, y)
    balanced = LogisticRegression(class_weight="balanced").fit(X, y)
    recall_plain = plain.predict(X[:40]).mean()
    recall_balanced = balanced.predict(X[:40]).mean()
    assert recall_balanced >= recall_plain


def test_logreg_regularisation_shrinks_weights():
    X, y = _data()
    weak = LogisticRegression(C=10.0).fit(X, y)
    strong = LogisticRegression(C=0.01).fit(X, y)
    assert np.linalg.norm(strong.coef_) < np.linalg.norm(weak.coef_)


# -- Gaussian naive Bayes --------------------------------------------------------


def test_gnb_accuracy_on_gaussian_blobs():
    rng = np.random.default_rng(0)
    X0 = rng.normal(-1, 0.5, size=(100, 2))
    X1 = rng.normal(1, 0.5, size=(100, 2))
    X = np.vstack([X0, X1])
    y = np.array([0] * 100 + [1] * 100)
    model = GaussianNB().fit(X, y)
    assert model.score(X, y) > 0.95


def test_gnb_priors_match_frequencies():
    X, y = _data(200)
    model = GaussianNB().fit(X, y)
    assert np.isclose(model.class_prior_.sum(), 1.0)
    assert np.isclose(model.class_prior_[1], y.mean(), atol=1e-9)


def test_gnb_proba_normalised():
    X, y = _data(100)
    proba = GaussianNB().fit(X, y).predict_proba(X)
    assert np.allclose(proba.sum(axis=1), 1.0)


# -- nearest neighbours -------------------------------------------------------------


def test_knn_predicts_training_points():
    X, y = _data(150)
    model = KNeighborsClassifier(n_neighbors=1).fit(X, y)
    assert model.score(X, y) == 1.0


def test_knn_distance_weighting():
    X, y = _data(200, seed=1)
    model = KNeighborsClassifier(n_neighbors=7, weights="distance").fit(X, y)
    assert model.score(X, y) > 0.9


def test_kneighbors_returns_sorted_distances():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(50, 4))
    index = NearestNeighbors(n_neighbors=5).fit(X)
    distances, indices = index.kneighbors(X[:3])
    assert distances.shape == (3, 5)
    assert np.all(np.diff(distances, axis=1) >= -1e-12)
    # The closest neighbour of a training point is itself.
    assert np.array_equal(indices[:, 0], np.arange(3))


def test_kneighbors_k_capped_at_reference_size():
    X = np.random.default_rng(0).normal(size=(4, 2))
    index = NearestNeighbors(n_neighbors=10).fit(X)
    distances, _ = index.kneighbors(X)
    assert distances.shape == (4, 4)


def test_pairwise_distances_metrics_agree_with_numpy():
    rng = np.random.default_rng(2)
    A = rng.normal(size=(6, 3))
    B = rng.normal(size=(5, 3))
    euclid = pairwise_distances(A, B, "euclidean")
    manual = np.linalg.norm(A[:, None, :] - B[None, :, :], axis=2)
    assert np.allclose(euclid, manual)
    manhattan = pairwise_distances(A, B, "manhattan")
    assert np.allclose(
        manhattan, np.abs(A[:, None, :] - B[None, :, :]).sum(axis=2)
    )
    cosine = pairwise_distances(A, B, "cosine")
    assert cosine.min() >= -1e-9 and cosine.max() <= 2 + 1e-9


def test_pairwise_distances_unknown_metric():
    with pytest.raises(ValueError, match="metric"):
        pairwise_distances(np.ones((2, 2)), np.ones((2, 2)), "hamming")
