"""Metrics, splitting, cross-validation and preprocessing tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    DecisionTreeClassifier,
    LabelEncoder,
    MinMaxScaler,
    StandardScaler,
    StratifiedKFold,
    accuracy_score,
    confusion_counts,
    cross_val_predict,
    cross_val_score,
    f1_score,
    precision_recall_f1,
    precision_score,
    recall_score,
    train_test_split,
)

# -- metrics -----------------------------------------------------------------


def test_confusion_counts_basic():
    y_true = np.array([1, 1, 0, 0, 1])
    y_pred = np.array([1, 0, 0, 1, 1])
    tp, fp, fn, tn = confusion_counts(y_true, y_pred)
    assert (tp, fp, fn, tn) == (2, 1, 1, 1)


def test_precision_recall_f1_known_values():
    y_true = [1, 1, 1, 0, 0, 0]
    y_pred = [1, 1, 0, 1, 0, 0]
    assert precision_score(y_true, y_pred) == pytest.approx(2 / 3)
    assert recall_score(y_true, y_pred) == pytest.approx(2 / 3)
    assert f1_score(y_true, y_pred) == pytest.approx(2 / 3)


def test_empty_prediction_edge_cases():
    assert precision_score([0, 0], [0, 0]) == 0.0
    assert recall_score([0, 0], [1, 1]) == 0.0
    assert f1_score([0, 0], [0, 0]) == 0.0


def test_accuracy_score():
    assert accuracy_score([1, 0, 1], [1, 1, 1]) == pytest.approx(2 / 3)


def test_shape_mismatch_raises():
    with pytest.raises(ValueError, match="shape"):
        f1_score([1, 0], [1])


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(0, 1), min_size=2, max_size=50),
    st.integers(0, 10_000),
)
def test_f1_is_harmonic_mean_property(y_true, seed):
    """Property: F1 == 2PR/(P+R) whenever P+R > 0."""
    rng = np.random.default_rng(seed)
    y_pred = rng.integers(0, 2, size=len(y_true))
    p, r, f1 = precision_recall_f1(np.asarray(y_true), y_pred)
    if p + r > 0:
        assert f1 == pytest.approx(2 * p * r / (p + r))
    else:
        assert f1 == 0.0


# -- splitting -----------------------------------------------------------------


def test_train_test_split_sizes():
    X = np.arange(100).reshape(-1, 1)
    y = np.arange(100) % 2
    Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=0.25,
                                          random_state=0)
    assert len(Xte) == 25 and len(Xtr) == 75
    assert len(ytr) == 75 and len(yte) == 25


def test_train_test_split_disjoint_and_complete():
    X = np.arange(60)
    (train, test) = train_test_split(X, test_size=0.3, random_state=1)
    assert sorted(np.concatenate([train, test]).tolist()) == list(range(60))


def test_train_test_split_stratified_preserves_ratio():
    y = np.array([0] * 80 + [1] * 20)
    X = np.arange(100)
    _, _, ytr, yte = train_test_split(X, y, test_size=0.5, stratify=y,
                                      random_state=0)
    assert abs(yte.mean() - 0.2) < 0.05
    assert abs(ytr.mean() - 0.2) < 0.05


def test_train_test_split_invalid_size():
    with pytest.raises(ValueError, match="test_size"):
        train_test_split(np.arange(5), test_size=5)


def test_stratified_kfold_partitions():
    y = np.array([0] * 30 + [1] * 15)
    X = np.arange(45)
    splitter = StratifiedKFold(n_splits=3, random_state=0)
    seen = []
    for train, test in splitter.split(X, y):
        assert set(train) & set(test) == set()
        seen.extend(test.tolist())
        # Roughly stratified folds.
        assert 0.2 < y[test].mean() < 0.5
    assert sorted(seen) == list(range(45))


def test_cross_val_predict_covers_everything():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(60, 3))
    y = (X[:, 0] > 0).astype(int)
    predictions = cross_val_predict(
        DecisionTreeClassifier(max_depth=3), X, y, cv=3, random_state=0
    )
    assert predictions.shape == (60,)
    assert accuracy_score(y, predictions) > 0.7


def test_cross_val_score_returns_per_fold():
    rng = np.random.default_rng(1)
    X = rng.normal(size=(90, 3))
    y = (X[:, 1] > 0).astype(int)
    scores = cross_val_score(
        DecisionTreeClassifier(max_depth=3), X, y, cv=3, random_state=0
    )
    assert len(scores) == 3
    assert scores.mean() > 0.6


# -- preprocessing -----------------------------------------------------------------


def test_standard_scaler_zero_mean_unit_var():
    rng = np.random.default_rng(0)
    X = rng.normal(5, 3, size=(200, 4))
    scaled = StandardScaler().fit_transform(X)
    assert np.allclose(scaled.mean(axis=0), 0, atol=1e-9)
    assert np.allclose(scaled.std(axis=0), 1, atol=1e-9)


def test_standard_scaler_constant_feature_safe():
    X = np.ones((10, 2))
    scaled = StandardScaler().fit_transform(X)
    assert np.all(np.isfinite(scaled))


def test_standard_scaler_inverse_transform():
    rng = np.random.default_rng(2)
    X = rng.normal(size=(50, 3))
    scaler = StandardScaler().fit(X)
    assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)


def test_minmax_scaler_range():
    rng = np.random.default_rng(1)
    X = rng.uniform(-7, 3, size=(100, 2))
    scaled = MinMaxScaler().fit_transform(X)
    assert scaled.min() >= 0 and scaled.max() <= 1


def test_label_encoder_roundtrip():
    y = np.array(["b", "a", "c", "a"])
    encoder = LabelEncoder().fit(y)
    codes = encoder.transform(y)
    assert np.array_equal(encoder.inverse_transform(codes), y)


def test_label_encoder_unseen_raises():
    encoder = LabelEncoder().fit(["a", "b"])
    with pytest.raises(ValueError, match="unseen"):
        encoder.transform(["z"])
