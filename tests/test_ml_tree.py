"""Decision tree unit tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import DecisionTreeClassifier


def _linearly_separable(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 4))
    y = (X[:, 0] + X[:, 1] > 0).astype(int)
    return X, y


def test_fits_separable_data():
    X, y = _linearly_separable()
    tree = DecisionTreeClassifier(random_state=0).fit(X, y)
    assert tree.score(X, y) > 0.95


def test_pure_node_stops_splitting():
    X = np.ones((10, 2))
    y = np.ones(10, dtype=int)
    tree = DecisionTreeClassifier().fit(X, y)
    assert tree.n_nodes_ == 1
    assert np.all(tree.predict(X) == 1)


def test_max_depth_limits_depth():
    X, y = _linearly_separable(400)
    shallow = DecisionTreeClassifier(max_depth=2, random_state=0).fit(X, y)
    assert shallow.tree_depth_ <= 2


def test_min_samples_leaf_respected():
    X, y = _linearly_separable(100)
    tree = DecisionTreeClassifier(min_samples_leaf=20, random_state=0)
    tree.fit(X, y)
    leaves = tree.children_left_ == -1
    leaf_sizes = tree.value_[leaves].sum(axis=1)
    assert leaf_sizes.min() >= 20


def test_min_samples_split_respected():
    X, y = _linearly_separable(100)
    tree = DecisionTreeClassifier(min_samples_split=80, random_state=0)
    tree.fit(X, y)
    internal = tree.children_left_ != -1
    assert tree.value_[internal].sum(axis=1).min() >= 80


def test_predict_proba_rows_sum_to_one():
    X, y = _linearly_separable()
    tree = DecisionTreeClassifier(max_depth=3, random_state=0).fit(X, y)
    proba = tree.predict_proba(X)
    assert np.allclose(proba.sum(axis=1), 1.0)
    assert proba.min() >= 0.0


def test_entropy_criterion_works():
    X, y = _linearly_separable()
    tree = DecisionTreeClassifier(criterion="entropy", random_state=0)
    assert tree.fit(X, y).score(X, y) > 0.95


def test_unknown_criterion_raises():
    X, y = _linearly_separable(20)
    with pytest.raises(ValueError, match="criterion"):
        DecisionTreeClassifier(criterion="bogus").fit(X, y)


def test_multiclass_support():
    rng = np.random.default_rng(1)
    X = rng.normal(size=(300, 3))
    y = np.digitize(X[:, 0], [-0.5, 0.5])
    tree = DecisionTreeClassifier(random_state=0).fit(X, y)
    assert set(tree.predict(X)) <= {0, 1, 2}
    assert tree.score(X, y) > 0.9


def test_string_labels_roundtrip():
    X, y = _linearly_separable(80)
    labels = np.where(y == 1, "match", "nonmatch")
    tree = DecisionTreeClassifier(random_state=0).fit(X, labels)
    assert set(tree.predict(X)) <= {"match", "nonmatch"}


def test_feature_count_mismatch_raises():
    X, y = _linearly_separable(50)
    tree = DecisionTreeClassifier(random_state=0).fit(X, y)
    with pytest.raises(ValueError, match="features"):
        tree.predict(np.ones((3, 7)))


def test_nan_input_rejected():
    X, y = _linearly_separable(30)
    X[0, 0] = np.nan
    with pytest.raises(ValueError, match="NaN"):
        DecisionTreeClassifier().fit(X, y)


def test_max_features_sqrt_subsamples():
    X, y = _linearly_separable(200, seed=3)
    tree = DecisionTreeClassifier(max_features="sqrt", random_state=0)
    tree.fit(X, y)
    assert tree._n_split_features() == 2  # sqrt(4)
    assert tree.score(X, y) > 0.7


def test_deterministic_given_seed():
    X, y = _linearly_separable(150, seed=5)
    t1 = DecisionTreeClassifier(max_features="sqrt", random_state=9).fit(X, y)
    t2 = DecisionTreeClassifier(max_features="sqrt", random_state=9).fit(X, y)
    assert np.array_equal(t1.predict(X), t2.predict(X))


def test_serialisation_roundtrip():
    import json

    X, y = _linearly_separable(100)
    tree = DecisionTreeClassifier(max_depth=4, random_state=0).fit(X, y)
    state = json.loads(json.dumps(tree.to_dict()))
    rebuilt = DecisionTreeClassifier.from_dict(state)
    assert np.array_equal(tree.predict(X), rebuilt.predict(X))


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_training_accuracy_at_least_majority(seed):
    """Property: an unconstrained tree never does worse than majority."""
    rng = np.random.default_rng(seed)
    X = rng.random((40, 3))
    y = rng.integers(0, 2, size=40)
    tree = DecisionTreeClassifier(random_state=0).fit(X, y)
    majority = max(np.mean(y), 1 - np.mean(y))
    assert tree.score(X, y) >= majority - 1e-9
