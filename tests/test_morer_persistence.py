"""Whole-MoRER persistence: save/load round trips, the zero-rebuild
counters, and format versioning."""

import json

import numpy as np
import pytest

from repro.core import MoRER, adjusted_rand_index
from tests.conftest import make_problem, make_problem_family


def _probes(n, seed=100, prefix="X"):
    return [
        make_problem(
            f"{prefix}{i}", f"{prefix}{i}b", shift=0.3 * (i % 2),
            seed=seed + i,
        )
        for i in range(n)
    ]


def _fit_warm(tmp_path=None, n_solves=4, **overrides):
    """A fitted instance that has already served a few sel_cov probes
    (so the warm partition, pair cache and sketch state are all live)."""
    config = dict(
        b_total=200, b_min=10, selection="cov", t_cov=0.6, random_state=0,
        incremental_clustering=True, use_index=True, graph_candidates=6,
    )
    config.update(overrides)
    morer = MoRER(**config).fit(make_problem_family(10))
    for probe in _probes(n_solves):
        morer.solve(probe)
    return morer


def test_round_trip_matches_continued_instance(tmp_path):
    """A loaded instance must behave byte-for-byte like the pre-save
    instance continuing in-process — including the RNG stream."""
    morer = _fit_warm()
    morer.save(tmp_path / "store")
    twin = MoRER.load(tmp_path / "store")
    assert twin.config == morer.config
    assert twin.trained_keys == morer.trained_keys
    assert sorted(map(sorted, twin.clusters_)) == sorted(
        map(sorted, morer.clusters_)
    )
    assert twin.total_labels_spent() == morer.total_labels_spent()
    assert twin.overhead_seconds() == pytest.approx(
        morer.overhead_seconds()
    )
    for probe in _probes(5, seed=700, prefix="R"):
        mine = morer.solve(probe)
        theirs = twin.solve(probe)
        assert np.array_equal(mine.predictions, theirs.predictions)
        assert mine.retrained == theirs.retrained
        assert mine.new_model == theirs.new_model
        assert mine.cluster_id == theirs.cluster_id
        assert adjusted_rand_index(morer.clusters_, twin.clusters_) == 1.0


def test_first_post_restart_solve_rebuilds_nothing(tmp_path):
    """The acceptance counters: the first ``sel_cov`` solve after a
    restart triggers no signature, sketch or partition rebuild, and
    pays exactly the pairwise work the warm pre-save instance pays for
    the same probe."""
    morer = _fit_warm()
    morer.save(tmp_path / "store")
    twin = MoRER.load(tmp_path / "store")
    probe = _probes(1, seed=900, prefix="Z")[0]

    warm_pairs_before = morer.problem_graph.stats["pair_evals"]
    warm_result = morer.solve(probe)
    warm_pairs = morer.problem_graph.stats["pair_evals"] - warm_pairs_before

    # Freshly loaded: nothing has been computed yet.
    assert twin.problem_graph.stats == {
        "pair_evals": 0, "sketch_rows_built": 0,
    }
    assert twin.problem_graph._signatures.builds == 0
    result = twin.solve(probe)
    assert np.array_equal(result.predictions, warm_result.predictions)
    # No partition rebuild: the solve replayed the journal.
    assert twin.counters["full_reclusters"] == 0
    assert twin.counters["full_quality_passes"] == 0
    assert twin.counters["warm_reclusters"] == 1
    # No sketch rows derived from signatures (bulk-loaded matrix), no
    # stored problem's signature rebuilt (only the probe's own), and
    # exactly the warm instance's pairwise work.
    assert twin.problem_graph.stats["sketch_rows_built"] == 0
    assert twin.problem_graph._signatures.builds == 1
    assert twin.problem_graph.stats["pair_evals"] == warm_pairs


def test_round_trip_without_partition_state(tmp_path):
    """Saving a non-incremental instance (no PartitionState) works and
    the loaded instance keeps solving on the full path."""
    morer = MoRER(
        b_total=200, b_min=10, selection="cov", t_cov=0.6, random_state=0,
        incremental_clustering=False,
    ).fit(make_problem_family(8))
    probe = _probes(1, seed=40)[0]
    morer.solve(probe)
    morer.save(tmp_path / "flat")
    twin = MoRER.load(tmp_path / "flat")
    assert twin._partition is None
    second = _probes(2, seed=40)[1]
    mine = morer.solve(second)
    theirs = twin.solve(second)
    assert np.array_equal(mine.predictions, theirs.predictions)
    assert twin.counters["full_reclusters"] == 1


def test_save_requires_fitted_instance(tmp_path):
    with pytest.raises(RuntimeError, match="not fitted"):
        MoRER().save(tmp_path / "nope")


def test_load_rejects_unknown_format(tmp_path):
    morer = _fit_warm(n_solves=1)
    morer.save(tmp_path / "store")
    manifest = json.loads((tmp_path / "store" / "morer.json").read_text())
    manifest["format"] = 999
    (tmp_path / "store" / "morer.json").write_text(json.dumps(manifest))
    with pytest.raises(ValueError, match="format"):
        MoRER.load(tmp_path / "store")


def test_round_trip_preserves_pending_journal(tmp_path):
    """Mutations journaled but not yet replayed must survive the
    restart: the loaded instance replays them on its first solve."""
    morer = _fit_warm(n_solves=2)
    # Out-of-band mutations after the last solve stay pending.
    extra = _probes(1, seed=60, prefix="P")[0]
    morer.problem_graph.add_problem(extra)
    victim = next(iter(make_problem_family(10)[0:1])).key
    morer.problem_graph.remove_problem(victim)
    assert morer.problem_graph.journal_since(
        morer._partition.cursor
    )
    morer.save(tmp_path / "pending")
    twin = MoRER.load(tmp_path / "pending")
    pending = twin.problem_graph.journal_since(twin._partition.cursor)
    assert [entry.op for entry in pending] == ["insert", "remove"]
    probe = _probes(1, seed=61, prefix="Q")[0]
    mine = morer.solve(probe)
    theirs = twin.solve(probe)
    assert np.array_equal(mine.predictions, theirs.predictions)
    assert twin.counters["full_reclusters"] == 0
    assert victim not in twin._partition.partition


def test_batch_solving_continues_after_restart(tmp_path):
    morer = _fit_warm(n_solves=2)
    morer.save(tmp_path / "store")
    twin = MoRER.load(tmp_path / "store")
    batch = _probes(4, seed=80, prefix="B")
    mine = morer.solve_batch(batch)
    theirs = twin.solve_batch(batch)
    for a, b in zip(mine, theirs):
        assert np.array_equal(a.predictions, b.predictions)
        assert a.retrained == b.retrained
        assert a.new_model == b.new_model
    assert twin.counters["batch_solves"] == 1
