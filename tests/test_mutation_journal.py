"""Mutation-journal tests: entry bookkeeping, replay exactness,
batched insertion/solving, timing attribution, and a property-style
mixed-churn suite driving random interleaved insert / remove /
``solve_batch`` sequences against the full-recluster reference."""

import numpy as np
import pytest

from repro.core import (
    ERProblemGraph,
    MoRER,
    PartitionState,
    adjusted_rand_index,
)
from repro.core.graph import JournalEntry
from repro.graphcluster import (
    ModularityAggregates,
    modularity,
    partition_from_communities,
)
from tests.conftest import make_problem, make_problem_family

TOLERANCE = 1e-9


def _probes(n, seed=100, prefix="X"):
    return [
        make_problem(
            f"{prefix}{i}", f"{prefix}{i}b", shift=0.3 * (i % 2),
            seed=seed + i,
        )
        for i in range(n)
    ]


def _fit(incremental, family, **overrides):
    config = dict(
        b_total=200, b_min=10, selection="cov", t_cov=0.6, random_state=0,
        incremental_clustering=incremental,
    )
    config.update(overrides)
    return MoRER(**config).fit(family)


# -- journal bookkeeping -----------------------------------------------------------


def test_journal_records_mutations_with_edges():
    graph = ERProblemGraph.build(make_problem_family(5), "ks")
    # build is an epoch boundary: version advanced, nothing replayable.
    assert graph.version == 5
    assert graph.journal_since(0) is None
    assert graph.journal_since(5) == []
    probe = make_problem("X", "Y", seed=50)
    graph.add_problem(probe)
    entries = graph.journal_since(5)
    assert len(entries) == 1
    assert entries[0].op == JournalEntry.INSERT
    assert entries[0].key == probe.key
    # The journaled edges are exactly the edges the insertion created.
    assert entries[0].edges == dict(graph.graph.neighbors(probe.key))
    recorded = dict(entries[0].edges)
    graph.remove_problem(probe.key)
    entries = graph.journal_since(5)
    assert [e.op for e in entries] == [
        JournalEntry.INSERT, JournalEntry.REMOVE
    ]
    assert entries[1].edges == recorded
    # Trim reclaims consumed entries and shifts the replay horizon.
    graph.trim_journal(6)
    assert graph.journal_since(5) is None
    assert [e.op for e in graph.journal_since(6)] == [JournalEntry.REMOVE]
    assert graph.can_replay(7) and not graph.can_replay(4)


def test_journal_entry_json_round_trip():
    entry = JournalEntry(
        JournalEntry.REMOVE, ("A", "B"), {("C", "D"): 0.25}
    )
    twin = JournalEntry.from_json(entry.to_json())
    assert twin.op == entry.op
    assert twin.key == entry.key
    assert twin.edges == entry.edges


def test_replay_tracks_modularity_exactly_through_churn():
    """Replayed aggregates must equal a fresh O(edges) modularity pass
    after arbitrary insert/remove interleavings."""
    graph = ERProblemGraph.build(make_problem_family(8), "ks")
    clusters = graph.cluster("leiden", 1.0, 0)
    state = PartitionState.from_full_run(
        graph, partition_from_communities(clusters)
    )
    probes = _probes(5, seed=70)
    graph.add_problems(probes[:3])
    graph.remove_problem(probes[1].key)
    graph.add_problem(probes[3])
    graph.remove_problem(make_problem_family(8)[0].key)
    graph.add_problem(probes[4])
    outcome = state.replay(graph, 1.0, 0)
    assert outcome is not None
    assert set(outcome.partition) == set(graph.problems())
    communities = {}
    for node, label in outcome.partition.items():
        communities.setdefault(label, set()).add(node)
    full = modularity(graph.graph, list(communities.values()), 1.0)
    assert abs(outcome.quality - full) < TOLERANCE
    assert outcome.inserts == 5
    # Rejecting the outcome must leave the state untouched.
    assert set(state.partition) != set(graph.problems())
    state.accept(outcome)
    assert state.cursor == graph.version
    assert state.inserts_since_full == 5


def test_replay_reinsertion_label_collision_stays_exact():
    """Regression: a re-inserted key whose old community label survived
    (a neighbour moved into it before the removal) must start as a
    genuine singleton — silently joining the surviving community
    corrupted the aggregates."""
    family = make_problem_family(8)
    graph = ERProblemGraph.build(family, "ks")
    clusters = graph.cluster("leiden", 1.0, 0)
    state = PartitionState.from_full_run(
        graph, partition_from_communities(clusters)
    )
    probe = _probes(1, seed=75)[0]
    # Relabel one whole community to the probe's key: exactly the state
    # remove/re-insert churn leaves behind.
    target = next(iter(state.partition.values()))
    for node, label in list(state.partition.items()):
        if label == target:
            state.partition[node] = probe.key
    state.aggregates = ModularityAggregates.from_partition(
        graph.graph, state.partition
    )
    graph.add_problem(probe)
    outcome = state.replay(graph, 1.0, 0)
    communities = list(_group(outcome.partition).values())
    assert abs(
        outcome.quality - modularity(graph.graph, communities, 1.0)
    ) < TOLERANCE


def test_incremental_leiden_fallback_rebuilds_aggregates():
    """When the degradation valve discards the local update, caller
    aggregates must be re-derived against the returned partition."""
    from repro.graphcluster import incremental_leiden

    graph = ERProblemGraph.build(make_problem_family(8), "ks")
    clusters = graph.cluster("leiden", 1.0, 0)
    partition = partition_from_communities(clusters)
    aggregates = ModularityAggregates.from_partition(graph.graph, partition)
    communities = incremental_leiden(
        graph.graph, partition, list(graph.problems()),
        random_state=0, tolerance=0.0, reference_modularity=10.0,
        aggregates=aggregates,
    )
    assert abs(
        aggregates.quality(1.0)
        - modularity(graph.graph, communities, 1.0)
    ) < TOLERANCE


def test_aggregates_from_partition_matches_modularity():
    graph = ERProblemGraph.build(make_problem_family(6), "ks")
    partition = partition_from_communities(graph.cluster("leiden", 1.0, 0))
    aggregates = ModularityAggregates.from_partition(graph.graph, partition)
    assert abs(
        aggregates.quality(1.0)
        - modularity(graph.graph, list(_group(partition).values()), 1.0)
    ) < TOLERANCE


# -- batched insertion -------------------------------------------------------------


def test_add_problems_matches_sequential_exact_mode():
    family = make_problem_family(6)
    probes = _probes(4, seed=80)
    sequential = ERProblemGraph.build(family, "ks", use_index=False)
    batched = ERProblemGraph.build(family, "ks", use_index=False)
    for probe in probes:
        sequential.add_problem(probe)
    batched.add_problems(probes)
    assert set(batched.problems()) == set(sequential.problems())
    for u, v, weight in sequential.graph.edges():
        assert abs(batched.graph.edge_weight(u, v) - weight) < TOLERANCE
    assert (
        batched.graph.number_of_edges()
        == sequential.graph.number_of_edges()
    )
    # One journal entry per member, in insertion order.
    entries = batched.journal_since(6)
    assert [e.key for e in entries] == [p.key for p in probes]


def test_add_problems_prefilters_through_the_index():
    family = make_problem_family(10)
    graph = ERProblemGraph.build(
        family, "ks", use_index=True, index_threshold=1, n_candidates=3
    )
    probes = _probes(3, seed=81)
    before = graph.stats["pair_evals"]
    graph.add_problems(probes)
    for probe in probes:
        degree = len(graph.graph.neighbors(probe.key))
        # <= candidates + edges to/from the other two batch members
        assert degree <= 3 + 2
    # Far fewer comparisons than the 10+11+12 of the exact path.
    assert graph.stats["pair_evals"] - before <= 3 * (3 + 2)


def test_add_problems_rejects_duplicates():
    graph = ERProblemGraph.build(make_problem_family(4), "ks")
    probe = make_problem("X", "Y", seed=82)
    with pytest.raises(ValueError, match="already in the graph"):
        graph.add_problems([probe, probe])
    graph.add_problem(probe)
    with pytest.raises(ValueError, match="already in the graph"):
        graph.add_problems([make_problem("W", "V", seed=83), probe])


# -- solve_batch -------------------------------------------------------------------


def test_solve_batch_matches_sequential_decisions():
    family = make_problem_family(10)
    sequential = _fit(True, family, use_index=True, graph_candidates=6)
    batched = _fit(True, family, use_index=True, graph_candidates=6)
    probes = _probes(8, seed=90, prefix="B")
    singles = [sequential.solve(p) for p in probes]
    results = batched.solve_batch(probes)
    assert len(results) == len(probes)
    for single, result in zip(singles, results):
        assert single.retrained == result.retrained
        assert single.new_model == result.new_model
    assert adjusted_rand_index(
        sequential.clusters_, batched.clusters_
    ) >= 0.97
    # One batch = one warm recluster, not one per probe.
    assert batched.counters["warm_reclusters"] == 1
    assert batched.counters["batch_solves"] == 1


def test_solve_batch_base_strategy_loops_search():
    family = make_problem_family(8)
    morer = _fit(True, family, selection="base")
    probes = _probes(3, seed=91, prefix="C")
    results = morer.solve_batch(probes)
    for probe, result in zip(probes, results):
        single = morer.solve(probe, strategy="base")
        assert np.array_equal(result.predictions, single.predictions)
    assert len(morer.problem_graph) == 8  # no integration under base


def test_solve_batch_timing_attribution_consistent():
    """Per-probe overhead shares must sum to the wall-clock overhead —
    charged once, not double-counted."""
    family = make_problem_family(10)
    morer = _fit(True, family, use_index=True, graph_candidates=6)
    probes = _probes(6, seed=92, prefix="D")
    before = morer.overhead_seconds()
    results = morer.solve_batch(probes)
    elapsed = morer.overhead_seconds() - before
    attributed = sum(result.overhead_seconds for result in results)
    assert attributed == pytest.approx(elapsed, rel=1e-6, abs=1e-9)
    # Sequential solve attributes its whole integration the same way.
    probe = _probes(1, seed=93, prefix="E")[0]
    before = morer.overhead_seconds()
    result = morer.solve(probe)
    assert result.overhead_seconds == pytest.approx(
        morer.overhead_seconds() - before, rel=1e-6, abs=1e-9
    )


def test_solve_batch_empty_and_unfitted():
    morer = MoRER(selection="cov")
    with pytest.raises(RuntimeError, match="not fitted"):
        morer.solve_batch([make_problem("X", "Y")])
    fitted = _fit(True, make_problem_family(4))
    assert fitted.solve_batch([]) == []


# -- modularity stays off the hot path ---------------------------------------------


def test_no_full_modularity_pass_on_warm_solves(monkeypatch):
    """The degradation check reads the delta-tracked aggregates: a warm
    solve must not call ``modularity()`` at all (call-count test)."""
    family = make_problem_family(10)
    morer = _fit(True, family, use_index=True, graph_candidates=6)
    calls = {"n": 0}
    import importlib
    # The package re-exports `leiden` (the function), shadowing the
    # submodule attribute — resolve the modules explicitly.
    leiden_module = importlib.import_module("repro.graphcluster.leiden")
    quality_module = importlib.import_module("repro.graphcluster.quality")

    original = quality_module.modularity

    def counted(*args, **kwargs):
        calls["n"] += 1
        return original(*args, **kwargs)

    monkeypatch.setattr(quality_module, "modularity", counted)
    monkeypatch.setattr(leiden_module, "modularity", counted)
    full_passes = morer.counters["full_quality_passes"]
    for probe in _probes(4, seed=95, prefix="F"):
        morer.solve(probe)
    assert calls["n"] == 0
    assert morer.counters["full_quality_passes"] == full_passes
    assert morer.counters["warm_reclusters"] >= 4


# -- property-style mixed churn ----------------------------------------------------


def test_mixed_churn_random_interleavings():
    """Random interleaved insert / remove / solve_batch sequences: the
    journal-replayed instance must track the full-recluster reference
    (ARI >= 0.97, identical retraining decisions) while keeping its
    journal cursor coherent after every step."""
    rng = np.random.default_rng(7)
    family = make_problem_family(12)
    incremental = _fit(True, family, use_index=True, graph_candidates=8)
    reference = _fit(False, family)
    probe_pool = _probes(18, seed=500, prefix="G")
    next_probe = 0
    removable = []
    for _step in range(12):
        op = rng.choice(["batch", "solve", "remove"])
        if op == "remove" and not removable:
            op = "solve"
        if op == "batch":
            size = int(rng.integers(2, 5))
            batch = probe_pool[next_probe:next_probe + size]
            if not batch:
                break
            next_probe += len(batch)
            batch_results = incremental.solve_batch(batch)
            reference_results = [reference.solve(p) for p in batch]
            for got, want in zip(batch_results, reference_results):
                assert got.retrained == want.retrained
                assert got.new_model == want.new_model
            removable.extend(p.key for p in batch)
        elif op == "solve":
            if next_probe >= len(probe_pool):
                break
            probe = probe_pool[next_probe]
            next_probe += 1
            got = incremental.solve(probe)
            want = reference.solve(probe)
            assert got.retrained == want.retrained
            assert got.new_model == want.new_model
            removable.append(probe.key)
        else:
            victim = removable.pop(int(rng.integers(len(removable))))
            incremental.problem_graph.remove_problem(victim)
            reference.problem_graph.remove_problem(victim)
        # Clustering quality tracks the full reference.
        assert adjusted_rand_index(
            [c & set(incremental.problem_graph.problems())
             for c in incremental.clusters_ if c
             & set(incremental.problem_graph.problems())],
            [c & set(reference.problem_graph.problems())
             for c in reference.clusters_ if c
             & set(reference.problem_graph.problems())],
        ) >= 0.97
        # Journal / partition-cursor coherence after every step.
        graph = incremental.problem_graph
        state = incremental._partition
        if state is not None:
            assert graph.can_replay(state.cursor)
            pending = graph.journal_since(state.cursor)
            assert pending is not None
            assert set(state.partition) | {
                e.key for e in pending if e.op == JournalEntry.INSERT
            } >= set(graph.problems())
            if not pending:
                # Fully synced: partition covers the graph exactly and
                # the delta-tracked quality matches a fresh full pass.
                assert set(state.partition) == set(graph.problems())
                assert abs(
                    state.aggregates.quality(1.0)
                    - modularity(
                        graph.graph, list(_group(state.partition).values()),
                        1.0,
                    )
                ) < TOLERANCE
    assert next_probe > 8  # the scenario consumed a real stream


def _group(partition):
    groups = {}
    for node, label in partition.items():
        groups.setdefault(label, set()).add(node)
    return groups


# -- compaction watermark (registered consumers) -----------------------------------


def test_trim_journal_respects_registered_consumer_cursors():
    graph = ERProblemGraph.build(make_problem_family(4), "ks")
    saver = graph.register_consumer()  # at version 4 (post-build)
    probes = _probes(3, seed=300)
    for probe in probes:
        graph.add_problem(probe)
    # A fast consumer (the live partition) trims at the head, but the
    # slow saver's cursor pins every entry it has not replayed yet.
    graph.trim_journal(graph.version)
    assert graph.journal_length == 3
    assert graph.journal_since(4) is not None
    # Advancing the saver releases the entries at the next trim.
    graph.advance_consumer(saver, graph.version - 1)
    graph.trim_journal(graph.version)
    assert graph.journal_length == 1
    assert graph.journal_since(4) is None
    # Default advance = caught up; unregistering removes the bound.
    graph.advance_consumer(saver)
    assert graph.consumer_cursor(saver) == graph.version
    graph.unregister_consumer(saver)
    graph.add_problem(make_problem("W", "Wb", seed=400))
    graph.trim_journal(graph.version)
    assert graph.journal_length == 0


def test_consumer_cursor_validation():
    graph = ERProblemGraph.build(make_problem_family(3), "ks")
    graph.add_problem(make_problem("X", "Xb", seed=310))
    graph.trim_journal(graph.version)  # offset now 4
    with pytest.raises(ValueError, match="outside the retained journal"):
        graph.register_consumer(2)
    with pytest.raises(ValueError, match="outside the retained journal"):
        graph.register_consumer(graph.version + 1)
    token = graph.register_consumer()
    with pytest.raises(ValueError, match="only advance"):
        graph.advance_consumer(token, graph.version - 1)
    with pytest.raises(ValueError, match="past version"):
        graph.advance_consumer(token, graph.version + 5)
    with pytest.raises(KeyError, match="unknown journal consumer"):
        graph.advance_consumer(object())
    # Unregistering twice is harmless.
    graph.unregister_consumer(token)
    graph.unregister_consumer(token)


def test_morer_trim_keeps_entries_for_slow_consumer():
    """MoRER's per-solve trim must not outrun a registered consumer."""
    family = make_problem_family(6)
    morer = _fit(True, family, use_index=True, index_threshold=2)
    token = morer.problem_graph.register_consumer()
    version_before = morer.problem_graph.version
    for probe in _probes(4, seed=320):
        morer.solve(probe)
    graph = morer.problem_graph
    # Every insertion since registration is still replayable for the
    # consumer, even though the partition cursor moved past them.
    entries = graph.journal_since(version_before)
    assert entries is not None and len(entries) == 4
    graph.advance_consumer(token)
    morer.solve(_probes(1, seed=330, prefix="Z")[0])
    assert graph.journal_since(version_before) is None
