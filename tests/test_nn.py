"""Neural substrate tests: gradient checks and training sanity."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    CLS_ID,
    Dense,
    Dropout,
    Embedding,
    HashingTokenizer,
    LayerNorm,
    MaskedMeanPool,
    MultiHeadSelfAttention,
    PAD_ID,
    ReLU,
    SEP_ID,
    SGD,
    TransformerEncoder,
    bce_with_logits,
    clip_gradients,
    cross_entropy,
    nt_xent,
    serialize_pair,
    serialize_record,
)


def numerical_grad(f, array, eps=1e-6, samples=6, rng=None):
    """Central-difference gradient at randomly sampled coordinates."""
    rng = rng or np.random.default_rng(0)
    flat = array.ravel()
    indices = rng.choice(flat.size, size=min(samples, flat.size),
                         replace=False)
    grads = {}
    for i in indices:
        original = flat[i]
        flat[i] = original + eps
        up = f()
        flat[i] = original - eps
        down = f()
        flat[i] = original
        grads[int(i)] = (up - down) / (2 * eps)
    return grads


def assert_grad_close(parameter, grads, atol=1e-5):
    for i, numeric in grads.items():
        analytic = parameter.grad.ravel()[i]
        assert analytic == pytest.approx(numeric, abs=atol, rel=1e-3)


# -- layers ---------------------------------------------------------------------


def test_dense_gradcheck():
    rng = np.random.default_rng(0)
    layer = Dense(4, 3, rng=rng)
    x = rng.normal(size=(5, 4))
    target = rng.normal(size=(5, 3))

    def loss():
        return 0.5 * float(np.sum((layer.forward(x) - target) ** 2))

    out = layer.forward(x)
    layer.backward(out - target)
    assert_grad_close(layer.weight, numerical_grad(loss, layer.weight.value))
    assert_grad_close(layer.bias, numerical_grad(loss, layer.bias.value))


def test_dense_3d_input_shape():
    layer = Dense(4, 2, rng=np.random.default_rng(0))
    x = np.random.default_rng(1).normal(size=(3, 5, 4))
    assert layer.forward(x).shape == (3, 5, 2)
    assert layer.backward(np.ones((3, 5, 2))).shape == x.shape


def test_layernorm_gradcheck():
    rng = np.random.default_rng(1)
    layer = LayerNorm(6)
    x = rng.normal(size=(4, 6))
    target = rng.normal(size=(4, 6))

    def loss():
        return 0.5 * float(np.sum((layer.forward(x) - target) ** 2))

    out = layer.forward(x)
    grad_in = layer.backward(out - target)
    # Check input gradient numerically too.
    grads_x = numerical_grad(loss, x)
    for i, numeric in grads_x.items():
        assert grad_in.ravel()[i] == pytest.approx(numeric, abs=1e-5)
    assert_grad_close(layer.gamma, numerical_grad(loss, layer.gamma.value))


def test_layernorm_output_standardised():
    x = np.random.default_rng(0).normal(3.0, 2.0, size=(8, 16))
    out = LayerNorm(16).forward(x)
    assert np.allclose(out.mean(axis=-1), 0, atol=1e-6)
    assert np.allclose(out.std(axis=-1), 1, atol=1e-2)


def test_relu_masks_negative():
    relu = ReLU()
    x = np.array([[-1.0, 2.0]])
    assert np.array_equal(relu.forward(x), [[0.0, 2.0]])
    assert np.array_equal(relu.backward(np.ones_like(x)), [[0.0, 1.0]])


def test_dropout_inference_identity_and_training_scales():
    drop = Dropout(0.5, rng=np.random.default_rng(0))
    x = np.ones((400, 4))
    assert np.array_equal(drop.forward(x, training=False), x)
    out = drop.forward(x, training=True)
    # Inverted dropout keeps the expectation.
    assert out.mean() == pytest.approx(1.0, abs=0.1)


def test_dropout_invalid_p():
    with pytest.raises(ValueError, match="probability"):
        Dropout(1.0)


def test_embedding_lookup_and_grad_accumulation():
    emb = Embedding(10, 4, rng=np.random.default_rng(0))
    ids = np.array([[1, 1, 2]])
    out = emb.forward(ids)
    assert out.shape == (1, 3, 4)
    emb.backward(np.ones((1, 3, 4)))
    # Token 1 appears twice -> accumulated gradient of 2.
    assert np.allclose(emb.table.grad[1], 2.0)
    assert np.allclose(emb.table.grad[2], 1.0)
    assert np.allclose(emb.table.grad[3], 0.0)


def test_attention_gradcheck_small():
    rng = np.random.default_rng(2)
    attention = MultiHeadSelfAttention(4, n_heads=2, rng=rng)
    x = rng.normal(size=(2, 3, 4))
    target = rng.normal(size=(2, 3, 4))

    def loss():
        return 0.5 * float(np.sum((attention.forward(x) - target) ** 2))

    out = attention.forward(x)
    attention.backward(out - target)
    assert_grad_close(
        attention.qkv.weight, numerical_grad(loss, attention.qkv.weight.value)
    )
    assert_grad_close(
        attention.out.weight, numerical_grad(loss, attention.out.weight.value)
    )


def test_attention_mask_blocks_padding():
    rng = np.random.default_rng(3)
    attention = MultiHeadSelfAttention(4, n_heads=1, rng=rng)
    x = rng.normal(size=(1, 4, 4))
    mask = np.array([[1, 1, 0, 0]])
    out_masked = attention.forward(x, mask=mask)
    x2 = x.copy()
    x2[0, 2:] = 99.0  # content of padded positions must not matter...
    out_masked2 = attention.forward(x2, mask=mask)
    assert np.allclose(out_masked[0, :2], out_masked2[0, :2], atol=1e-8)


def test_attention_dim_head_divisibility():
    with pytest.raises(ValueError, match="divisible"):
        MultiHeadSelfAttention(5, n_heads=2)


def test_masked_mean_pool_ignores_padding():
    pool = MaskedMeanPool()
    x = np.arange(12, dtype=float).reshape(1, 3, 4)
    mask = np.array([[1, 1, 0]])
    out = pool.forward(x, mask=mask)
    assert np.allclose(out[0], x[0, :2].mean(axis=0))
    grad = pool.backward(np.ones((1, 4)))
    assert np.allclose(grad[0, 2], 0.0)


# -- losses ---------------------------------------------------------------------


def test_bce_matches_manual():
    logits = np.array([0.0, 2.0, -2.0])
    targets = np.array([1.0, 1.0, 0.0])
    loss, grad = bce_with_logits(logits, targets)
    p = 1 / (1 + np.exp(-logits))
    manual = -np.mean(
        targets * np.log(p) + (1 - targets) * np.log(1 - p)
    )
    assert loss == pytest.approx(manual)
    assert grad.shape == logits.shape


def test_bce_pos_weight_shifts_gradient():
    logits = np.zeros(2)
    targets = np.array([1.0, 0.0])
    _, plain = bce_with_logits(logits, targets)
    _, weighted = bce_with_logits(logits, targets, pos_weight=5.0)
    assert abs(weighted[0]) > abs(plain[0])
    assert weighted[1] == pytest.approx(plain[1])


def test_cross_entropy_gradcheck():
    rng = np.random.default_rng(0)
    logits = rng.normal(size=(4, 3))
    targets = np.array([0, 2, 1, 1])
    loss, grad = cross_entropy(logits, targets)
    eps = 1e-6
    for i in range(logits.size):
        flat = logits.ravel()
        original = flat[i]
        flat[i] = original + eps
        up, _ = cross_entropy(logits, targets)
        flat[i] = original - eps
        down, _ = cross_entropy(logits, targets)
        flat[i] = original
        assert grad.ravel()[i] == pytest.approx(
            (up - down) / (2 * eps), abs=1e-5
        )


def test_nt_xent_prefers_aligned_pairs():
    rng = np.random.default_rng(0)
    base = rng.normal(size=(4, 8))
    aligned = np.vstack([base, base + 0.01 * rng.normal(size=(4, 8))])
    shuffled = np.vstack([base, rng.normal(size=(4, 8))])
    loss_aligned, _ = nt_xent(aligned)
    loss_shuffled, _ = nt_xent(shuffled)
    assert loss_aligned < loss_shuffled


def test_nt_xent_needs_even_count():
    with pytest.raises(ValueError, match="even"):
        nt_xent(np.ones((5, 3)))


# -- optimisers -------------------------------------------------------------------


def test_sgd_reduces_quadratic():
    layer = Dense(2, 1, rng=np.random.default_rng(0))
    X = np.random.default_rng(1).normal(size=(50, 2))
    y = X @ np.array([[1.0], [-2.0]])
    optimizer = SGD(layer.parameters(), lr=0.1)
    losses = []
    for _ in range(60):
        out = layer.forward(X)
        losses.append(float(np.mean((out - y) ** 2)))
        layer.backward(2 * (out - y) / len(X))
        optimizer.step()
    assert losses[-1] < 0.05 * losses[0]


def test_adam_reduces_quadratic():
    layer = Dense(2, 1, rng=np.random.default_rng(0))
    X = np.random.default_rng(1).normal(size=(50, 2))
    y = X @ np.array([[1.0], [-2.0]])
    optimizer = Adam(layer.parameters(), lr=0.05)
    first = None
    for _ in range(100):
        out = layer.forward(X)
        loss = float(np.mean((out - y) ** 2))
        first = first if first is not None else loss
        layer.backward(2 * (out - y) / len(X))
        optimizer.step()
    assert loss < 0.05 * first


def test_clip_gradients_scales_down():
    layer = Dense(2, 2, rng=np.random.default_rng(0))
    layer.weight.grad[:] = 100.0
    norm = clip_gradients(layer.parameters(), max_norm=1.0)
    assert norm > 1.0
    total = sum(float(np.sum(p.grad**2)) for p in layer.parameters())
    assert np.sqrt(total) == pytest.approx(1.0, abs=1e-9)


# -- text encoding -----------------------------------------------------------------


def test_serialize_record_ditto_format():
    text = serialize_record({"title": "tv", "price": 5}, ["title", "price"])
    assert text == "COL title VAL tv COL price VAL 5"


def test_serialize_record_skips_missing():
    assert "price" not in serialize_record({"title": "tv", "price": None})


def test_serialize_pair_contains_separator():
    assert " [SEP] " in serialize_pair({"a": 1}, {"a": 2})


def test_tokenizer_fixed_length_and_mask():
    tokenizer = HashingTokenizer(vocab_size=64, max_len=8)
    ids, mask = tokenizer.encode("one two three")
    assert len(ids) == 8 and len(mask) == 8
    assert ids[0] == CLS_ID
    assert mask.sum() == 4  # CLS + 3 tokens
    assert ids[mask == 0].max(initial=PAD_ID) == PAD_ID


def test_tokenizer_stability_across_instances():
    t1 = HashingTokenizer(128, 8)
    t2 = HashingTokenizer(128, 8)
    assert t1.token_id("thinkpad") == t2.token_id("thinkpad")


def test_tokenizer_sep_token():
    tokenizer = HashingTokenizer(64, 8)
    ids, _ = tokenizer.encode("a [SEP] b")
    assert SEP_ID in ids


def test_tokenizer_qgram_unit():
    tokenizer = HashingTokenizer(256, 16, unit="qgrams")
    ids, mask = tokenizer.encode("COL t VAL thinkpad")
    assert mask.sum() > 3  # several trigrams


def test_tokenizer_vocab_validation():
    with pytest.raises(ValueError, match="vocab_size"):
        HashingTokenizer(vocab_size=3)
    with pytest.raises(ValueError, match="unit"):
        HashingTokenizer(unit="chars")


# -- end-to-end training -----------------------------------------------------------


def test_transformer_learns_toy_task():
    """The encoder + head must learn to separate two token groups."""
    rng = np.random.default_rng(0)
    encoder = TransformerEncoder(
        vocab_size=32, dim=8, n_heads=2, n_layers=1, max_len=6,
        dropout=0.0, rng=rng,
    )
    pool = MaskedMeanPool()
    head = Dense(8, 1, rng=rng)
    optimizer = Adam(encoder.parameters() + head.parameters(), lr=5e-3)

    ids = rng.integers(3, 32, size=(64, 6))
    labels = (ids[:, 0] > 17).astype(float)
    mask = np.ones_like(ids)
    for _ in range(60):
        hidden = encoder.forward(ids, mask=mask, training=True)
        logits = head.forward(pool.forward(hidden, mask=mask))
        loss, dlogits = bce_with_logits(logits, labels)
        dh = pool.backward(head.backward(dlogits.reshape(-1, 1)))
        encoder.backward(dh)
        optimizer.step()
    hidden = encoder.forward(ids, mask=mask, training=False)
    logits = head.forward(pool.forward(hidden, mask=mask)).ravel()
    accuracy = np.mean((logits > 0) == (labels > 0.5))
    assert accuracy > 0.9


def test_transformer_rejects_overlong_sequence():
    encoder = TransformerEncoder(vocab_size=16, dim=4, n_heads=1,
                                 n_layers=1, max_len=4)
    with pytest.raises(ValueError, match="max_len"):
        encoder.forward(np.zeros((1, 9), dtype=int))
