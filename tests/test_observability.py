"""Observability stack: metric instruments and Prometheus rendering,
the instrumented service, the live ``/metrics`` endpoint under
concurrent load, structured access logging — and the parity guarantee
that instrumentation never changes a solve decision."""

import io
import json
import threading

import numpy as np
import pytest

from repro.service import (
    AccessLog,
    MetricsRegistry,
    MoRERService,
    ServiceClient,
    ServiceHTTPServer,
    ServiceMetrics,
    SolveRequest,
)
from repro.service.errors import ServiceError
from repro.service.fixtures import demo_morer, demo_probes
from repro.service.observability import (
    SERVICE_METRIC_SPECS,
    NullServiceMetrics,
)


def parse_prometheus(text):
    """``{series_name_with_labels: float_value}`` from the text format."""
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        samples[name] = float(value)
    return samples


# -- instruments ------------------------------------------------------------


def test_counter_is_monotonic():
    registry = MetricsRegistry()
    counter = registry.counter("t_total", "help")
    counter.inc()
    counter.inc(2.5)
    assert counter.value() == pytest.approx(3.5)
    with pytest.raises(ValueError, match="cannot decrease"):
        counter.inc(-1)
    # set_total adopts larger values but never moves backwards.
    counter.set_total(10)
    counter.set_total(4)
    assert counter.value() == 10


def test_counter_label_validation():
    registry = MetricsRegistry()
    counter = registry.counter("l_total", "help", ("kind",))
    counter.inc(kind="a")
    with pytest.raises(ValueError, match="expects labels"):
        counter.inc(wrong="a")
    with pytest.raises(ValueError, match="expects labels"):
        counter.inc()  # labelled family needs its labels
    assert counter.value(kind="a") == 1
    assert counter.value(kind="never-seen") == 0


def test_gauge_set_inc_dec_and_function():
    registry = MetricsRegistry()
    gauge = registry.gauge("g", "help")
    gauge.set(5)
    gauge.inc(2)
    gauge.dec(3)
    assert gauge.value() == 4
    computed = registry.gauge("g2", "help")
    computed.set_function(lambda: 42)
    assert "g2 42" in registry.render().splitlines()


def test_histogram_cumulative_buckets_sum_count():
    registry = MetricsRegistry()
    hist = registry.histogram("h_seconds", "help", buckets=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 5.0, 50.0):
        hist.observe(value)
    counts, total, count = hist.snapshot()
    assert counts == (1, 2, 3)  # cumulative: le=0.1, le=1, le=10
    assert count == 4
    assert total == pytest.approx(55.55)
    rendered = registry.render()
    samples = parse_prometheus(rendered)
    assert samples['h_seconds_bucket{le="0.1"}'] == 1
    assert samples['h_seconds_bucket{le="1"}'] == 2
    assert samples['h_seconds_bucket{le="10"}'] == 3
    assert samples['h_seconds_bucket{le="+Inf"}'] == 4
    assert samples["h_seconds_count"] == 4
    assert samples["h_seconds_sum"] == pytest.approx(55.55)
    assert "# TYPE h_seconds histogram" in rendered


def test_render_escapes_label_values():
    registry = MetricsRegistry()
    counter = registry.counter("e_total", "help", ("path",))
    counter.inc(path='we"ird\\path\nline')
    line = [
        ln for ln in registry.render().splitlines()
        if ln.startswith("e_total{")
    ][0]
    assert line == 'e_total{path="we\\"ird\\\\path\\nline"} 1'


def test_registry_rejects_duplicate_names():
    registry = MetricsRegistry()
    registry.counter("dup_total", "help")
    with pytest.raises(ValueError, match="already registered"):
        registry.gauge("dup_total", "help")


def test_registry_runs_collect_callbacks_each_render():
    registry = MetricsRegistry()
    gauge = registry.gauge("pulled", "help")
    ticks = []

    def collect():
        ticks.append(1)
        gauge.set(len(ticks))

    registry.register_collect(collect)
    registry.render()
    registry.render()
    assert gauge.value() == 2
    # A failing collector must not break the scrape.
    registry.register_collect(lambda: 1 / 0)
    assert "pulled 3" in registry.render()


# -- ServiceMetrics ---------------------------------------------------------


def test_service_metrics_covers_every_spec():
    metrics = ServiceMetrics()
    assert metrics.enabled
    registered = set(metrics.registry.names())
    spec_names = {spec["name"] for spec in SERVICE_METRIC_SPECS}
    assert registered == spec_names
    for spec in SERVICE_METRIC_SPECS:
        attribute = spec["name"][len("morer_"):]
        instrument = getattr(metrics, attribute)
        assert instrument.name == spec["name"]
        assert instrument.kind == spec["type"]


def test_null_service_metrics_is_a_silent_drop_in():
    metrics = NullServiceMetrics()
    assert not metrics.enabled
    metrics.solves_total.inc(strategy="base")
    metrics.queue_depth.set(3)
    metrics.scheduler_tick_seconds.observe(0.1)
    metrics.register_collect(lambda: None)
    assert metrics.render() == ""


# -- AccessLog --------------------------------------------------------------


def test_access_log_writes_json_lines():
    buffer = io.StringIO()
    log = AccessLog(stream=buffer, level="info")
    log.info(endpoint="/solve", status=200, latency_ms=1.25)
    log.debug(message="hidden at info level")
    lines = buffer.getvalue().splitlines()
    assert len(lines) == 1
    record = json.loads(lines[0])
    assert record["level"] == "info"
    assert record["endpoint"] == "/solve"
    assert record["status"] == 200
    assert record["ts"] > 0


def test_access_log_levels():
    buffer = io.StringIO()
    log = AccessLog(stream=buffer, level="debug")
    log.debug(message="visible")
    assert "visible" in buffer.getvalue()
    silent = AccessLog(stream=io.StringIO(), level="off")
    assert not silent.enabled_for("info")
    with pytest.raises(ValueError, match="unknown access-log level"):
        AccessLog(level="verbose")


def test_access_log_owns_file_path(tmp_path):
    path = tmp_path / "access.jsonl"
    log = AccessLog(path=path)
    log.info(endpoint="/stats", status=200)
    log.close()
    record = json.loads(path.read_text().splitlines()[0])
    assert record["endpoint"] == "/stats"
    # Writes after close are swallowed, never raised.
    log.info(endpoint="/stats", status=200)


# -- instrumented service (in-process) ---------------------------------------


def test_service_instruments_solves_and_ticks():
    service = MoRERService(demo_morer(10), max_batch_size=4, max_wait_ms=5)
    try:
        metrics = service.metrics
        probes = demo_probes(4, seed=31)
        service.solve(SolveRequest(
            problem=probes[0].without_labels(), strategy="base"
        ))
        service.solve_batch([
            SolveRequest(problem=probe, strategy="cov")
            for probe in probes[1:]
        ])
        assert metrics.solves_total.value(strategy="base") == 1
        assert metrics.solves_total.value(strategy="cov") == 3
        ticks = metrics.scheduler_ticks_total.value()
        assert ticks >= 1
        assert metrics.scheduler_coalesced_requests_total.value() == 3
        _, __, tick_count = metrics.scheduler_tick_seconds.snapshot()
        assert tick_count == ticks
        _, size_sum, ___ = metrics.scheduler_batch_size.snapshot()
        assert size_sum == 3
        # Every cov solve produced exactly one decision sample.
        decisions = sum(
            metrics.solve_decisions_total.value(decision=d)
            for d in ("reuse", "retrain", "new_model")
        )
        assert decisions == 3
    finally:
        service.close()


def test_render_reports_pull_time_gauges():
    service = MoRERService(demo_morer(8))
    try:
        samples = parse_prometheus(service.metrics.render())
        assert samples["morer_repository_entries"] >= 1
        assert samples["morer_graph_problems"] == 8
        assert samples["morer_labels_spent"] > 0
        assert samples["morer_degraded"] == 0
        assert samples["morer_queue_depth"] == 0
    finally:
        service.close()


def test_shared_registry_across_services_rejects_double_registration():
    registry = MetricsRegistry()
    service = MoRERService(demo_morer(6), metrics=registry)
    try:
        assert service.metrics.registry is registry
        with pytest.raises(ValueError, match="already registered"):
            MoRERService(demo_morer(6), metrics=registry)
    finally:
        service.close()


# -- live HTTP ---------------------------------------------------------------


@pytest.fixture
def gateway():
    service = MoRERService(demo_morer(10), max_batch_size=4, max_wait_ms=10)
    log_buffer = io.StringIO()
    server = ServiceHTTPServer(
        service, ("127.0.0.1", 0),
        access_log=AccessLog(stream=log_buffer, level="info"),
    )
    server.log_buffer = log_buffer
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        service.close()


def test_metrics_endpoint_under_concurrent_burst(gateway):
    client = ServiceClient(gateway.url, client_id="scraper")
    client.wait_ready(timeout=5)
    first = parse_prometheus(client.metrics())

    probes = demo_probes(6, seed=41)
    errors = []

    def one(probe):
        try:
            client.solve(probe, strategy="cov")
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [
        threading.Thread(target=one, args=(probe,)) for probe in probes
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors, errors

    second = parse_prometheus(client.metrics())
    # Counters are monotonic across scrapes.
    for name, value in first.items():
        if "_total" in name or name.endswith("_count"):
            assert second.get(name, 0.0) >= value, name
    # The burst is visible: 6 cov solves, >= 1 tick, coalescing ratio
    # consistent between the two series.
    cov = second['morer_solves_total{strategy="cov"}']
    assert cov - first.get('morer_solves_total{strategy="cov"}', 0.0) == 6
    ticks = second["morer_scheduler_ticks_total"]
    coalesced = second["morer_scheduler_coalesced_requests_total"]
    assert 1 <= ticks <= coalesced
    # Histogram invariants: +Inf bucket == count, bucket counts are
    # cumulative (non-decreasing in le), sum of tick sizes == requests.
    sizes = sorted(
        (float(name.split('le="')[1].rstrip('"}')), value)
        for name, value in second.items()
        if name.startswith('morer_scheduler_batch_size_bucket')
        and "+Inf" not in name
    )
    cumulative = [value for _, value in sizes]
    assert cumulative == sorted(cumulative)
    assert second[
        'morer_scheduler_batch_size_bucket{le="+Inf"}'
    ] == second["morer_scheduler_batch_size_count"] == ticks
    assert second["morer_scheduler_batch_size_sum"] == coalesced
    # Request latency histogram saw every HTTP request to /solve.
    assert second[
        'morer_http_request_seconds_count{endpoint="/solve"}'
    ] >= 6
    # Content type is the Prometheus exposition version.
    import urllib.request

    with urllib.request.urlopen(gateway.url + "/metrics", timeout=5) as r:
        assert r.headers["Content-Type"].startswith(
            "text/plain; version=0.0.4"
        )


def test_metrics_endpoint_404_when_disabled():
    service = MoRERService(demo_morer(6), metrics=False)
    server = ServiceHTTPServer(
        service, ("127.0.0.1", 0),
        access_log=AccessLog(stream=io.StringIO()),
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        client = ServiceClient(server.url)
        client.wait_ready(timeout=5)
        with pytest.raises(ServiceError, match="disabled"):
            client.metrics()
    finally:
        server.shutdown()
        server.server_close()
        service.close()


def _log_records(buffer, predicate, timeout=5.0):
    """Poll the access-log buffer: the line lands microseconds after
    the response is on the wire, so a just-returned client can race
    it."""
    import time

    deadline = time.monotonic() + timeout
    while True:
        records = [
            json.loads(line) for line in buffer.getvalue().splitlines()
        ]
        matches = [r for r in records if predicate(r)]
        if matches or time.monotonic() >= deadline:
            return matches, records
        time.sleep(0.01)


def test_access_log_carries_ids_and_batch_ids(gateway):
    client = ServiceClient(gateway.url, client_id="tenant-log")
    client.wait_ready(timeout=5)
    client.solve(demo_probes(1, seed=51)[0], strategy="cov")
    solve_records, records = _log_records(
        gateway.log_buffer, lambda r: r.get("endpoint") == "/solve"
    )
    assert solve_records, records
    record = solve_records[-1]
    assert record["client_id"] == "tenant-log"
    assert record["status"] == 200
    assert record["latency_ms"] > 0
    assert len(record["request_id"]) >= 8
    # The scheduler tick that served the cov solve is correlated.
    assert record["batch_id"] >= 1
    # Request ids are echoed back as a response header.
    import urllib.request

    request = urllib.request.Request(
        gateway.url + "/healthz", headers={"X-Request-Id": "trace-me-123"}
    )
    with urllib.request.urlopen(request, timeout=5) as response:
        assert response.headers["X-Request-Id"] == "trace-me-123"
    traced, records = _log_records(
        gateway.log_buffer,
        lambda r: r.get("request_id") == "trace-me-123",
    )
    assert traced, records


def test_stdlib_lines_route_to_debug_level():
    service = MoRERService(demo_morer(6))
    buffer = io.StringIO()
    server = ServiceHTTPServer(
        service, ("127.0.0.1", 0),
        access_log=AccessLog(stream=buffer, level="debug"),
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        client = ServiceClient(server.url)
        client.wait_ready(timeout=5)
        stdlib, records = _log_records(
            buffer, lambda r: r.get("source") == "stdlib"
        )
        # BaseHTTPRequestHandler logged its "GET /healthz" line — it
        # landed in the structured stream instead of being dropped.
        assert stdlib and stdlib[0]["level"] == "debug", records
        assert "GET /healthz" in stdlib[0]["message"]
    finally:
        server.shutdown()
        server.server_close()
        service.close()


def test_stdlib_lines_suppressed_at_info_level(gateway):
    client = ServiceClient(gateway.url)
    client.wait_ready(timeout=5)
    health, records = _log_records(
        gateway.log_buffer, lambda r: r.get("endpoint") == "/healthz"
    )
    assert health, records
    assert not any(r.get("source") == "stdlib" for r in records)


# -- parity ------------------------------------------------------------------


def test_instrumentation_and_limiting_do_not_change_decisions():
    """A rate-limited + instrumented run must produce byte-identical
    solve decisions to a bare run of the same admitted requests."""
    probes = demo_probes(6, seed=61)

    def run(instrumented):
        service = MoRERService(
            demo_morer(10), max_batch_size=1, max_wait_ms=0,
            metrics=None if instrumented else False,
        )
        if instrumented:
            server = ServiceHTTPServer(
                service, ("127.0.0.1", 0),
                access_log=AccessLog(stream=io.StringIO(), level="debug"),
                rate_limit_rps=1000.0, rate_burst=1000.0,
            )
            thread = threading.Thread(
                target=server.serve_forever, daemon=True
            )
            thread.start()
            client = ServiceClient(server.url, client_id="parity")
            client.wait_ready(timeout=5)
        try:
            responses = []
            for probe in probes:
                if instrumented:
                    responses.append(client.solve(probe, strategy="cov"))
                else:
                    responses.append(
                        service.solve(
                            SolveRequest(problem=probe, strategy="cov")
                        )
                    )
            return responses
        finally:
            if instrumented:
                server.shutdown()
                server.server_close()
            service.close()

    instrumented = run(instrumented=True)
    bare = run(instrumented=False)
    for a, b in zip(instrumented, bare):
        assert np.array_equal(a.predictions, b.predictions)
        assert a.cluster_id == b.cluster_id
        assert a.retrained == b.retrained
        assert a.new_model == b.new_model
        assert a.labels_spent == b.labels_spent
        assert a.coverage == pytest.approx(b.coverage)
