"""Cross-module property-based tests (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ERProblem, KolmogorovSmirnovTest, WassersteinTest
from repro.datasets import CorruptionProfile, Corruptor
from repro.graphcluster import Graph, leiden, modularity
from repro.similarity import ComparisonSchema, FeatureSpec


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000), st.floats(0.0, 0.5))
def test_corruptor_never_crashes_and_preserves_type(seed, rate):
    """Property: corruption of a string yields a string or None."""
    profile = CorruptionProfile(
        typo_rate=rate, ocr_rate=rate, abbreviate_rate=rate,
        token_drop_rate=rate, token_shuffle_rate=rate,
        missing_rate=rate / 5, decorate_rate=rate,
    )
    corruptor = Corruptor(profile, seed)
    for value in ("canon eos 70d", "a", "", "x1 carbon gen9"):
        result = corruptor.corrupt_value(value)
        assert result is None or isinstance(result, str)
    number = corruptor.corrupt_value(123.45)
    assert number is None or isinstance(number, float)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_problem_subset_preserves_invariants(seed):
    """Property: any subset of a valid ERProblem is a valid ERProblem
    with consistent labels/pair alignment."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(5, 60))
    features = rng.random((n, 3))
    labels = rng.integers(0, 2, size=n)
    if labels.sum() == 0:
        labels[0] = 1
    pair_ids = [(f"a{i}", f"b{i}") for i in range(n)]
    problem = ERProblem("A", "B", features, labels, pair_ids)
    take = rng.choice(n, size=max(1, n // 2), replace=False)
    subset = problem.subset(take)
    assert subset.n_pairs == len(take)
    for row, index in enumerate(take):
        assert np.allclose(subset.features[row], features[int(index)])
        assert subset.labels[row] == labels[int(index)]
        assert subset.pair_ids[row] == pair_ids[int(index)]


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_distribution_tests_are_symmetric(seed):
    """Property: sim_p(A, B) == sim_p(B, A) for the univariate tests."""
    rng = np.random.default_rng(seed)
    a = rng.random((40, 3))
    b = rng.random((55, 3))
    for test in (KolmogorovSmirnovTest(), WassersteinTest()):
        assert test.problem_similarity(a, b) == pytest.approx(
            test.problem_similarity(b, a)
        )


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000))
def test_leiden_communities_have_nonnegative_modularity_on_dense(seed):
    """Property: on a random graph with planted density, Leiden's
    partition never scores below the trivial single community."""
    rng = np.random.default_rng(seed)
    g = Graph()
    n = 14
    for i in range(n):
        g.add_node(i)
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < 0.3:
                g.add_edge(i, j, float(rng.random()) + 0.1)
    if g.total_weight() == 0:
        return
    communities = leiden(g, random_state=0)
    q = modularity(g, communities)
    q_trivial = modularity(g, [set(g.nodes())])
    assert q >= q_trivial - 1e-9


@settings(max_examples=25, deadline=None)
@given(
    st.text(alphabet="abc 123", max_size=15),
    st.text(alphabet="abc 123", max_size=15),
)
def test_schema_features_always_in_unit_interval(a, b):
    """Property: comparison schemas always emit values in [0, 1]."""
    schema = ComparisonSchema([
        FeatureSpec("t", "jaccard"),
        FeatureSpec("t", "levenshtein"),
        FeatureSpec("t", "jaro_winkler"),
        FeatureSpec("p", "numeric"),
    ])
    vector = schema.compare({"t": a, "p": a}, {"t": b, "p": b})
    assert np.all(vector >= 0.0) and np.all(vector <= 1.0)
