"""Model repository + MoRER end-to-end tests (§4.4–4.5)."""

import numpy as np
import pytest

from repro.core import (
    CountingOracle,
    ModelRepository,
    MoRER,
    MoRERConfig,
)
from repro.ml import RandomForestClassifier, precision_recall_f1
from tests.conftest import make_problem


# -- config -----------------------------------------------------------------------


def test_config_defaults_match_table3():
    config = MoRERConfig()
    assert config.distribution_test == "ks"
    assert config.model_generation == "al"
    assert config.al_method == "bootstrap"
    assert config.selection == "base"


@pytest.mark.parametrize("field,value", [
    ("model_generation", "zero-shot"),
    ("al_method", "qbc"),
    ("selection", "greedy"),
    ("t_cov", 0.0),
    ("b_total", -1),
    ("budget_policy", "magic"),
])
def test_config_validation(field, value):
    with pytest.raises(ValueError):
        MoRERConfig(**{field: value})


def test_config_roundtrip():
    config = MoRERConfig(b_total=123, distribution_test="psi")
    assert MoRERConfig.from_dict(config.to_dict()) == config


# -- repository --------------------------------------------------------------------


def _fitted_entry_repo(problems):
    repo = ModelRepository("ks")
    for i in range(0, len(problems), 2):
        group = problems[i:i + 2]
        X = np.vstack([p.features for p in group])
        y = np.concatenate([p.labels for p in group])
        model = RandomForestClassifier(n_estimators=5, random_state=0)
        model.fit(X, y)
        repo.add_entry({p.key for p in group}, model, X, y,
                       labels_spent=len(y), trained_keys={p.key for p in group})
    return repo


def test_repository_search_prefers_matching_regime():
    problems = [
        make_problem("A", "B", seed=0),
        make_problem("C", "D", seed=1),
        make_problem("E", "F", shift=0.35, seed=2),
        make_problem("G", "H", shift=0.35, seed=3),
    ]
    repo = _fitted_entry_repo(problems)
    probe_same = make_problem("X", "Y", seed=9)
    entry, similarity = repo.search(probe_same)
    assert problems[0].key in entry.problem_keys
    assert similarity > 0.5
    probe_shift = make_problem("X", "Z", shift=0.35, seed=10)
    entry, _ = repo.search(probe_shift)
    assert problems[2].key in entry.problem_keys


def test_repository_search_empty_raises(toy_problem):
    with pytest.raises(LookupError, match="empty"):
        ModelRepository("ks").search(toy_problem)


def test_repository_entry_bookkeeping(problem_family):
    repo = _fitted_entry_repo(problem_family)
    assert len(repo) == 3
    assert repo.total_labels_spent() == sum(
        p.n_pairs for p in problem_family
    )
    key = problem_family[0].key
    assert repo.entry_for_problem(key) is not None
    assert repo.entry_for_problem(("nope", "nada")) is None


def test_repository_save_load_roundtrip(tmp_path, problem_family):
    repo = _fitted_entry_repo(problem_family)
    repo.config = MoRERConfig()
    repo.save(tmp_path / "store")
    loaded = ModelRepository.load(tmp_path / "store")
    assert len(loaded) == len(repo)
    probe = make_problem("X", "Y", seed=5)
    entry_a, sim_a = repo.search(probe)
    entry_b, sim_b = loaded.search(probe)
    assert entry_a.cluster_id == entry_b.cluster_id
    assert sim_a == pytest.approx(sim_b)
    predictions_a = entry_a.predict(probe.features)
    predictions_b = entry_b.predict(probe.features)
    assert np.array_equal(predictions_a, predictions_b)


def test_repository_retrain_invalidation_evicts_signature_and_sketch():
    """Retraining an entry must evict both its cached signature and its
    sketch-index row, and the next search must see the new model."""
    problems = [
        make_problem(f"S{i}", f"T{i}", shift=0.0, seed=i) for i in range(6)
    ]
    repo = _fitted_entry_repo(problems)
    repo.use_index = True  # force the sketch path regardless of size
    probe = make_problem("X", "Y", shift=0.35, seed=50)
    repo.search(probe)  # populate signature cache + sketch rows
    entry_id = next(iter(repo.entries))
    assert entry_id in repo._entry_signatures
    assert entry_id in repo._sketch_index
    # "Retrain" the entry onto the probe's (shifted) regime.
    entry = repo.entries[entry_id]
    replacement = make_problem("R", "S", shift=0.35, seed=60)
    entry.training_features = replacement.features
    entry.training_labels = replacement.labels
    repo.invalidate_entry_cache(entry_id)
    assert entry_id not in repo._entry_signatures
    assert entry_id not in repo._sketch_index
    # The next search rebuilds both lazily and the retrained entry now
    # wins for probes from the new regime.
    best, similarity = repo.search(probe, n_candidates=len(repo))
    assert best.cluster_id == entry_id
    assert entry_id in repo._sketch_index
    exact_best, exact_similarity = repo.search(probe, use_index=False)
    assert exact_best.cluster_id == entry_id
    assert abs(similarity - exact_similarity) < 1e-9


def test_repository_search_consistent_after_repeated_invalidation():
    """Alternating invalidations and indexed searches must never serve
    a stale sketch row (the row is rebuilt from the fresh signature)."""
    problems = [
        make_problem(f"S{i}", f"T{i}", shift=0.1 * (i % 3), seed=i)
        for i in range(8)
    ]
    repo = _fitted_entry_repo(problems)
    repo.use_index = True
    probe = make_problem("X", "Y", seed=9)
    for step in range(3):
        entry_id = list(repo.entries)[step % len(repo.entries)]
        entry = repo.entries[entry_id]
        replacement = make_problem(
            "R", "S", shift=0.12 * step, seed=70 + step
        )
        entry.training_features = replacement.features
        repo.invalidate_entry_cache(entry_id)
        indexed = repo.search(probe, top_k=3, n_candidates=len(repo))
        exact = repo.search(probe, top_k=3, use_index=False)
        assert [e.cluster_id for e, _ in indexed] == [
            e.cluster_id for e, _ in exact
        ], step


# -- counting oracle ----------------------------------------------------------------


def test_counting_oracle_counts():
    oracle = CountingOracle(np.array([0, 1, 1, 0]))
    assert list(oracle([1, 2])) == [1, 1]
    assert oracle.count == 2
    oracle([0])
    assert oracle.count == 3


# -- MoRER end-to-end ---------------------------------------------------------------


def test_morer_requires_labels(problem_family):
    morer = MoRER(b_total=60, b_min=10, random_state=0)
    bare = [p.without_labels() for p in problem_family]
    with pytest.raises(ValueError, match="labels"):
        morer.fit(bare)


def test_morer_requires_shared_feature_space():
    a = make_problem("A", "B", n_features=3)
    b = make_problem("C", "D", n_features=5)
    with pytest.raises(ValueError, match="feature space"):
        MoRER(b_total=60, b_min=10).fit([a, b])


def test_morer_unfitted_solve_raises(toy_problem):
    with pytest.raises(RuntimeError, match="not fitted"):
        MoRER().solve(toy_problem)


def test_morer_fit_solve_quality(problem_family):
    morer = MoRER(b_total=120, b_min=20, random_state=0)
    morer.fit(problem_family)
    assert len(morer.repository) == len(morer.clusters_)
    probe = make_problem("X", "Y", seed=42)
    result = morer.solve(probe.without_labels())
    _, _, f1 = precision_recall_f1(probe.labels, result.predictions)
    assert f1 > 0.85
    assert result.labels_spent == 0
    assert not result.retrained


def test_morer_budget_respected(problem_family):
    morer = MoRER(b_total=100, b_min=20, random_state=0)
    morer.fit(problem_family)
    assert morer.total_labels_spent() <= 100


def test_morer_supervised_uses_all_labels(problem_family):
    morer = MoRER(model_generation="supervised", random_state=0)
    morer.fit(problem_family)
    assert morer.total_labels_spent() == sum(
        p.n_pairs for p in problem_family
    )


def test_morer_almser_variant_runs(problem_family):
    morer = MoRER(b_total=100, b_min=20, al_method="almser", random_state=0)
    morer.fit(problem_family)
    probe = make_problem("X", "Y", seed=13)
    result = morer.solve(probe.without_labels())
    _, _, f1 = precision_recall_f1(probe.labels, result.predictions)
    assert f1 > 0.8


def test_morer_timings_populated(problem_family):
    morer = MoRER(b_total=80, b_min=10, random_state=0)
    morer.fit(problem_family)
    morer.solve(make_problem("X", "Y", seed=3).without_labels())
    assert morer.timings["analysis"] > 0
    assert morer.timings["clustering"] >= 0
    assert morer.timings["al_selection"] > 0
    assert morer.timings["search"] > 0
    assert morer.overhead_seconds() > 0


def test_morer_sel_cov_new_cluster_trains_new_model():
    """A probe from an unseen regime must trigger a new model under
    sel_cov when it lands in an all-new cluster."""
    family = [make_problem(f"S{i}", f"T{i}", seed=i) for i in range(4)]
    morer = MoRER(b_total=80, b_min=10, selection="cov", t_cov=0.25,
                  random_state=0)
    morer.fit(family)
    n_entries = len(morer.repository)
    # Strongly shifted problems forming their own cluster.
    probe = make_problem("X1", "Y1", shift=0.45, seed=90)
    result = morer.solve(probe)
    if result.new_model:
        assert len(morer.repository) == n_entries + 1
        assert result.labels_spent > 0
    assert probe.key in morer.problem_graph


def test_morer_sel_cov_coverage_retraining():
    family = [make_problem(f"S{i}", f"T{i}", seed=i) for i in range(4)]
    morer = MoRER(b_total=80, b_min=10, selection="cov", t_cov=0.05,
                  random_state=0)
    morer.fit(family)
    spent_before = morer.total_labels_spent()
    # Same-regime probes join the existing cluster and push coverage up.
    retrained_any = False
    for i in range(3):
        probe = make_problem(f"X{i}", f"Y{i}", seed=50 + i)
        result = morer.solve(probe)
        retrained_any = retrained_any or result.retrained or result.new_model
    assert retrained_any
    assert morer.total_labels_spent() > spent_before


def test_morer_sel_cov_respects_high_threshold():
    family = [make_problem(f"S{i}", f"T{i}", seed=i) for i in range(6)]
    morer = MoRER(b_total=100, b_min=10, selection="cov", t_cov=1.0,
                  random_state=0)
    morer.fit(family)
    probe = make_problem("X", "Y", seed=77)
    result = morer.solve(probe)
    # cov can never exceed 1.0 -> never retrain an existing cluster.
    assert not result.retrained


def test_morer_strategy_override(problem_family):
    morer = MoRER(b_total=80, b_min=10, selection="cov", random_state=0)
    morer.fit(problem_family)
    probe = make_problem("X", "Y", seed=21)
    result = morer.solve(probe.without_labels(), strategy="base")
    assert result.labels_spent == 0
    with pytest.raises(ValueError, match="strategy"):
        morer.solve(probe, strategy="other")


def test_morer_predict_shortcut(problem_family):
    morer = MoRER(b_total=80, b_min=10, random_state=0).fit(problem_family)
    probe = make_problem("X", "Y", seed=33)
    predictions = morer.predict(probe.without_labels())
    assert predictions.shape == (probe.n_pairs,)
    assert set(np.unique(predictions)) <= {0, 1}
