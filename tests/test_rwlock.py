"""Unit tests for the write-preferring read-write lock and the
``@requires_*_lock`` discipline decorators (REP001's runtime half)."""

import threading
import time

import pytest

from repro.service.rwlock import (
    LockDisciplineError,
    ReadWriteLock,
    requires_read_lock,
    requires_write_lock,
)


def _spawn(fn):
    thread = threading.Thread(target=fn, daemon=True)
    thread.start()
    return thread


# ---------------------------------------------------------------------------
# Core semantics


def test_concurrent_readers():
    lock = ReadWriteLock()
    inside = threading.Barrier(3, timeout=5)

    def reader():
        with lock.read_lock():
            inside.wait()  # all three hold the read side at once

    threads = [_spawn(reader) for _ in range(3)]
    for thread in threads:
        thread.join(timeout=5)
        assert not thread.is_alive()


def test_writer_excludes_readers_and_writers():
    lock = ReadWriteLock()
    order = []

    def reader():
        with lock.read_lock():
            order.append("read")

    def writer():
        with lock.write_lock():
            order.append("write")

    with lock.write_lock():
        t_read = _spawn(reader)
        t_write = _spawn(writer)
        time.sleep(0.05)
        assert order == []  # both blocked behind the writer
    t_read.join(timeout=5)
    t_write.join(timeout=5)
    assert not t_read.is_alive() and not t_write.is_alive()
    # Writer preference: the queued writer goes first.
    assert order == ["write", "read"]


def test_write_preference_blocks_new_readers():
    lock = ReadWriteLock()
    events = []
    reader_in = threading.Event()
    release_reader = threading.Event()
    writer_done = threading.Event()

    def first_reader():
        with lock.read_lock():
            reader_in.set()
            release_reader.wait(timeout=5)

    def writer():
        with lock.write_lock():
            events.append("writer")
        writer_done.set()

    def late_reader():
        with lock.read_lock():
            events.append("late_reader")

    t1 = _spawn(first_reader)
    assert reader_in.wait(timeout=5)
    t2 = _spawn(writer)
    time.sleep(0.05)  # let the writer queue up
    t3 = _spawn(late_reader)
    time.sleep(0.05)
    # The late reader must NOT slip in ahead of the waiting writer.
    assert events == []
    release_reader.set()
    assert writer_done.wait(timeout=5)
    for thread in (t1, t2, t3):
        thread.join(timeout=5)
    assert events[0] == "writer"
    assert events == ["writer", "late_reader"]


def test_holder_tracking():
    lock = ReadWriteLock()
    assert not lock.held_read()
    assert not lock.held_write()
    with lock.read_lock():
        assert lock.held_read()
        assert not lock.held_write()
    with lock.write_lock():
        assert lock.held_write()
        assert lock.held_read()  # a writer may do anything a reader may
    assert not lock.held_read()
    assert not lock.held_write()


def test_holder_tracking_is_per_thread():
    lock = ReadWriteLock()
    seen = {}
    inside = threading.Event()
    release = threading.Event()

    def reader():
        with lock.read_lock():
            inside.set()
            release.wait(timeout=5)

    thread = _spawn(reader)
    assert inside.wait(timeout=5)
    # Another thread holds the read side; *this* thread does not.
    seen["read"] = lock.held_read()
    seen["write"] = lock.held_write()
    release.set()
    thread.join(timeout=5)
    assert seen == {"read": False, "write": False}


def test_reentrant_read_count():
    """The holder bookkeeping counts nested read acquisitions from one
    thread correctly (the lock itself stays documented non-reentrant;
    this pins the accounting that the debug assertions rely on)."""
    lock = ReadWriteLock()
    lock.acquire_read()
    lock.acquire_read()
    assert lock.held_read()
    lock.release_read()
    assert lock.held_read()  # one acquisition still outstanding
    lock.release_read()
    assert not lock.held_read()


# ---------------------------------------------------------------------------
# Marker decorators (runtime half of REP001)


class _Guarded:
    def __init__(self):
        self._lock = ReadWriteLock()
        self.state = 0

    @requires_write_lock
    def bump_locked(self):
        self.state += 1
        return self.state

    @requires_read_lock
    def peek_locked(self):
        return self.state


def test_markers_tag_the_function():
    assert _Guarded.bump_locked.__repro_lock__ == "write"
    assert _Guarded.peek_locked.__repro_lock__ == "read"
    # functools.wraps preserved identity for introspection/docs.
    assert _Guarded.bump_locked.__name__ == "bump_locked"


def test_write_marker_asserts_without_lock():
    obj = _Guarded()
    with pytest.raises(LockDisciplineError):
        obj.bump_locked()


def test_write_marker_asserts_under_read_lock():
    obj = _Guarded()
    with obj._lock.read_lock():
        with pytest.raises(LockDisciplineError):
            obj.bump_locked()


def test_read_marker_asserts_without_lock():
    obj = _Guarded()
    with pytest.raises(LockDisciplineError):
        obj.peek_locked()


def test_markers_pass_with_correct_lock():
    obj = _Guarded()
    with obj._lock.write_lock():
        assert obj.bump_locked() == 1
        assert obj.peek_locked() == 1  # write satisfies read
    with obj._lock.read_lock():
        assert obj.peek_locked() == 1


def test_marker_asserts_from_wrong_thread():
    """Holding the write lock on thread A does not license thread B."""
    obj = _Guarded()
    result = {}
    entered = threading.Event()
    release = threading.Event()

    def holder():
        with obj._lock.write_lock():
            entered.set()
            release.wait(timeout=5)

    thread = _spawn(holder)
    assert entered.wait(timeout=5)
    try:
        obj.bump_locked()
        result["raised"] = False
    except LockDisciplineError:
        result["raised"] = True
    release.set()
    thread.join(timeout=5)
    assert result["raised"]


def test_markers_tolerate_objects_without_lock():
    """A marked method on an object with no ``_lock`` stays callable —
    the decorators guard discipline, they do not impose a lock."""

    class Free:
        @requires_write_lock
        def poke_locked(self):
            return "ok"

    assert Free().poke_locked() == "ok"
