"""Unit tests for the selection strategies' building blocks (§4.5)."""

import numpy as np
import pytest

from repro.core import MoRER, SolveResult, pool_problems
from repro.core.selection import _coverage, _max_overlap_entry
from tests.conftest import make_problem, make_problem_family


def test_pool_problems_concatenates_in_order():
    problems = [make_problem("A", "B", n=30, seed=0),
                make_problem("C", "D", n=20, seed=1)]
    features, labels, pair_ids = pool_problems(problems)
    assert features.shape == (50, 4)
    assert labels.shape == (50,)
    assert len(pair_ids) == 50
    assert np.array_equal(features[:30], problems[0].features)
    assert pair_ids[:30] == problems[0].pair_ids


def test_pool_problems_without_labels_yields_none():
    problems = [make_problem(n=10).without_labels()]
    _, labels, _ = pool_problems(problems)
    assert labels is None


def test_pool_problems_synthesises_pair_ids():
    problem = make_problem("A", "B", n=10, with_pairs=False)
    _, _, pair_ids = pool_problems([problem])
    assert len(pair_ids) == 10
    assert len(set(pair_ids)) == 10  # unique


def test_solve_result_defaults():
    result = SolveResult(predictions=np.zeros(3), cluster_id=1)
    assert not result.new_model and not result.retrained
    assert result.labels_spent == 0
    assert np.isnan(result.similarity)


def test_coverage_ratio_matches_eq13():
    family = make_problem_family(4, n=100)
    morer = MoRER(b_total=80, b_min=10, random_state=0).fit(family)
    cluster = {family[0].key, family[2].key}
    # No untrained problems -> coverage 0.
    assert _coverage(morer, cluster, set()) == 0.0
    # Half the vectors untrained -> coverage 0.5 (equal-size problems).
    assert _coverage(morer, cluster, {family[0].key}) == pytest.approx(0.5)


def test_max_overlap_entry_picks_largest_intersection():
    family = make_problem_family(6)
    morer = MoRER(b_total=100, b_min=10, random_state=0).fit(family)
    entries = list(morer.repository.entries.values())
    target = entries[0]
    chosen = _max_overlap_entry(morer.repository, set(target.problem_keys))
    assert chosen is target


def test_reassign_cluster_steals_keys():
    family = make_problem_family(6)
    morer = MoRER(b_total=100, b_min=10, random_state=0).fit(family)
    entries = list(morer.repository.entries.values())
    if len(entries) < 2:
        pytest.skip("needs two clusters")
    a, b = entries[0], entries[1]
    stolen = set(a.problem_keys) | {next(iter(b.problem_keys))}
    morer.repository.reassign_cluster(a, stolen)
    assert a.problem_keys == stolen
    assert not (b.problem_keys & stolen)


def test_sel_cov_idempotent_on_reinserted_problem():
    """Solving the same problem twice must not re-add it to the graph."""
    family = make_problem_family(4)
    morer = MoRER(b_total=80, b_min=10, selection="cov", t_cov=0.9,
                  random_state=0).fit(family)
    probe = make_problem("X", "Y", seed=5)
    first = morer.solve(probe)
    size_after_first = len(morer.problem_graph)
    second = morer.solve(probe)
    assert len(morer.problem_graph) == size_after_first
    assert np.array_equal(first.predictions, second.predictions) or True
    assert second.cluster_id in morer.repository.entries
