"""Service-layer tests: typed boundary, micro-batching scheduler
parity, concurrent access (threaded ``base`` during ``cov``, save
under load), bounded-queue overload, and strict config overrides."""

import threading
import time

import numpy as np
import pytest

from repro.core import ERProblem, MoRER, MoRERConfig
from repro.service import (
    FitRequest,
    InvalidRequest,
    MoRERService,
    NotFitted,
    Overloaded,
    RepositoryStats,
    SolveRequest,
    SolveResponse,
    problem_from_dict,
    problem_to_dict,
)
from repro.service.fixtures import demo_morer, demo_probes, demo_problems
from tests.conftest import make_problem


# -- typed boundary ----------------------------------------------------------------


def test_problem_dict_round_trip():
    problem = make_problem(n=20)
    twin = problem_from_dict(problem_to_dict(problem))
    assert twin.key == problem.key
    assert np.array_equal(twin.features, problem.features)
    assert np.array_equal(twin.labels, problem.labels)
    assert twin.pair_ids == problem.pair_ids
    assert twin.feature_names == problem.feature_names


def test_problem_from_dict_validates_loudly():
    good = problem_to_dict(make_problem(n=5))
    with pytest.raises(InvalidRequest, match="missing required field"):
        problem_from_dict({k: v for k, v in good.items()
                           if k != "features"})
    bad = dict(good)
    bad["features"] = [[2.5] * 4] * 5  # outside [0, 1]
    with pytest.raises(InvalidRequest, match="invalid problem"):
        problem_from_dict(bad)
    with pytest.raises(InvalidRequest, match="must be a JSON object"):
        problem_from_dict("not a dict")


def test_solve_request_round_trip_and_validation():
    request = SolveRequest(problem=make_problem(n=6), strategy="cov")
    twin = SolveRequest.from_dict(request.to_dict())
    assert twin.strategy == "cov"
    assert twin.problem.key == request.problem.key
    with pytest.raises(InvalidRequest, match="strategy"):
        SolveRequest(problem=make_problem(n=6), strategy="magic")
    with pytest.raises(InvalidRequest, match="missing required field"):
        SolveRequest.from_dict({"strategy": "base"})


def test_solve_response_round_trip_encodes_nan_as_null():
    response = SolveResponse(
        predictions=np.array([1, 0, 1]), cluster_id=3,
        similarity=float("nan"), retrained=True, labels_spent=7,
        coverage=0.4, overhead_seconds=0.01,
    )
    data = response.to_dict()
    assert data["similarity"] is None  # strict JSON, no NaN literal
    twin = SolveResponse.from_dict(data)
    assert np.array_equal(twin.predictions, response.predictions)
    assert np.isnan(twin.similarity)
    assert twin.retrained and twin.labels_spent == 7
    result = twin.to_result()
    assert result.cluster_id == 3 and result.coverage == 0.4


def test_fit_request_requires_labels():
    unlabelled = make_problem(n=5).without_labels()
    with pytest.raises(InvalidRequest, match="no labels"):
        FitRequest(problems=[unlabelled])
    with pytest.raises(InvalidRequest, match="at least one"):
        FitRequest(problems=[])


def test_repository_stats_round_trip():
    stats = RepositoryStats(
        fitted=True, n_entries=2, n_problems=9, total_labels_spent=40,
        graph_version=11, journal_pending=3,
        counters={"batch_solves": 1}, timings={"search": 0.5},
        service={"cov_solves": 4},
    )
    twin = RepositoryStats.from_dict(stats.to_dict())
    assert twin == stats


# -- strict config overrides (satellite) --------------------------------------------


def test_config_rejects_unknown_keys_naming_valid_fields():
    with pytest.raises(ValueError) as excinfo:
        MoRERConfig(t_covv=0.5)
    message = str(excinfo.value)
    assert "'t_covv'" in message
    assert "valid fields" in message and "t_cov" in message


def test_morer_rejects_unknown_override_keys():
    with pytest.raises(ValueError, match="unknown MoRERConfig field"):
        MoRER(selectoin="cov")
    config = MoRERConfig()
    with pytest.raises(ValueError, match="'bttl'"):
        MoRER(config, bttl=100)
    # Known overrides still work on both paths.
    assert MoRER(b_total=123).config.b_total == 123
    assert MoRER(config, b_total=321).config.b_total == 321


def test_service_knob_validation():
    with pytest.raises(ValueError, match="service_max_batch_size"):
        MoRERConfig(service_max_batch_size=0)
    with pytest.raises(ValueError, match="service_max_wait_ms"):
        MoRERConfig(service_max_wait_ms=-1)
    with pytest.raises(ValueError, match="service_max_queue_depth"):
        MoRERConfig(service_max_queue_depth=0)
    config = MoRERConfig(service_max_batch_size=4, service_max_wait_ms=1.5)
    assert MoRERConfig.from_dict(config.to_dict()) == config


# -- service façade ----------------------------------------------------------------


@pytest.fixture
def served():
    service = MoRERService(
        demo_morer(10), max_batch_size=4, max_wait_ms=20
    )
    yield service
    service.close()


def test_base_solve_matches_direct_morer(served):
    twin = demo_morer(10)
    probe = demo_probes(1)[0].without_labels()
    response = served.solve(SolveRequest(problem=probe, strategy="base"))
    direct = twin.solve(probe, strategy="base")
    assert response.cluster_id == direct.cluster_id
    assert np.array_equal(response.predictions, direct.predictions)
    assert response.similarity == pytest.approx(direct.similarity)
    assert served.counters["base_solves"] == 1


def test_service_accepts_problem_and_dict_requests(served):
    probe = demo_probes(1)[0]
    by_problem = served.solve(probe)
    by_dict = served.solve(
        SolveRequest(problem=probe, strategy="cov").to_dict()
    )
    assert by_problem.cluster_id == by_dict.cluster_id
    with pytest.raises(InvalidRequest, match="solve expects"):
        served.solve(42)


def test_not_fitted_then_fit_then_refit_rejected():
    service = MoRERService(MoRER(
        selection="cov", model_generation="supervised",
        classifier="logistic_regression", random_state=0,
    ))
    try:
        assert service.stats().fitted is False
        assert service.healthz()["fitted"] is False
        with pytest.raises(NotFitted, match="no fitted repository"):
            service.solve(demo_probes(1)[0])
        stats = service.fit(FitRequest(problems=demo_problems(8)))
        assert stats.fitted and stats.n_entries >= 1
        assert service.solve(demo_probes(1)[0]).predictions.size
        with pytest.raises(InvalidRequest, match="already fitted"):
            service.fit(demo_problems(8))
    finally:
        service.close()


def test_feature_schema_mismatch_rejected_at_admission(served):
    probe = make_problem("Q", "Qb", n=10, n_features=7)
    with pytest.raises(InvalidRequest, match="shared comparison schema"):
        served.solve(SolveRequest(problem=probe, strategy="cov"))
    # The bad probe never reached the graph (no poisoned batch).
    assert served.counters["cov_solves"] == 0


# -- micro-batching scheduler -------------------------------------------------------


def test_scheduler_coalesces_and_matches_solve_batch_byte_identically():
    """The acceptance bar: concurrently submitted cov requests coalesce
    into one tick whose decisions are byte-identical to a direct
    ``solve_batch`` of the same probes on a twin instance."""
    probes = demo_probes(6)
    twin = demo_morer(12)
    direct = twin.solve_batch(probes, strategy="cov")

    service = MoRERService(
        demo_morer(12), max_batch_size=len(probes), max_wait_ms=2000
    )
    try:
        futures = [
            service.submit(SolveRequest(problem=probe, strategy="cov"))
            for probe in probes
        ]
        responses = [future.result(timeout=30) for future in futures]
        # Everything coalesced into exactly one solve_batch tick.
        assert service.counters["batches_dispatched"] == 1
        assert service.counters["max_coalesced"] == len(probes)
        assert service.morer.counters["batch_solves"] == 1
    finally:
        service.close()

    for response, reference in zip(responses, direct):
        assert np.array_equal(response.predictions, reference.predictions)
        assert response.cluster_id == reference.cluster_id
        assert response.retrained == reference.retrained
        assert response.new_model == reference.new_model
        assert response.labels_spent == reference.labels_spent
        assert response.coverage == pytest.approx(reference.coverage)


def test_bounded_queue_raises_overloaded():
    service = MoRERService(
        demo_morer(8), max_batch_size=1, max_wait_ms=0, max_queue_depth=1
    )
    try:
        probes = demo_probes(3, seed=77)
        service._lock.acquire_write()  # park the scheduler in dispatch
        try:
            first = service.submit(
                SolveRequest(problem=probes[0], strategy="cov")
            )
            # Wait for the scheduler to take the first request in-flight
            # (it then blocks on the write lock we hold).
            deadline = time.monotonic() + 5
            while True:
                with service._queue_cond:
                    if not service._queue:
                        break
                assert time.monotonic() < deadline
                time.sleep(0.005)
            second = service.submit(
                SolveRequest(problem=probes[1], strategy="cov")
            )
            with pytest.raises(Overloaded, match="queue is full"):
                service.submit(
                    SolveRequest(problem=probes[2], strategy="cov")
                )
        finally:
            service._lock.release_write()
        assert first.result(timeout=30).predictions.size
        assert second.result(timeout=30).predictions.size
        assert service.counters["overload_rejections"] == 1
    finally:
        service.close()


def test_cancelled_future_does_not_kill_the_scheduler():
    service = MoRERService(
        demo_morer(8), max_batch_size=8, max_wait_ms=500
    )
    try:
        probes = demo_probes(3, seed=91)
        futures = [
            service.submit(SolveRequest(problem=probe, strategy="cov"))
            for probe in probes
        ]
        # Cancel the middle request while the tick is still open.
        assert futures[1].cancel()
        assert futures[0].result(timeout=30).predictions.size
        assert futures[2].result(timeout=30).predictions.size
        assert futures[1].cancelled()
        # The scheduler survived and keeps serving.
        follow_up = service.solve(SolveRequest(
            problem=make_problem("FU", "FUb", seed=92), strategy="cov"
        ))
        assert follow_up.predictions.size
        assert service.counters["cov_solves"] == 3  # cancelled one never ran
    finally:
        service.close()


def test_solve_batch_admission_is_all_or_nothing():
    service = MoRERService(
        demo_morer(8), max_batch_size=4, max_wait_ms=10, max_queue_depth=2
    )
    try:
        graph_size = len(service.morer.problem_graph)
        good = demo_probes(2, seed=95)
        bad = make_problem("BAD", "BADb", n=10, n_features=9)
        # A mid-list invalid member rejects the whole batch before any
        # admission: nothing was queued, nothing integrated.
        with pytest.raises(InvalidRequest, match="shared comparison"):
            service.solve_batch([
                SolveRequest(problem=good[0], strategy="cov"),
                SolveRequest(problem=bad, strategy="cov"),
                SolveRequest(problem=good[1], strategy="cov"),
            ])
        assert service.counters["cov_solves"] == 0
        assert len(service.morer.problem_graph) == graph_size
        # A batch larger than the queue bound is rejected as a unit.
        with pytest.raises(Overloaded, match="queue is full"):
            service.solve_batch([
                SolveRequest(problem=probe, strategy="cov")
                for probe in demo_probes(3, seed=96)
            ])
        with service._queue_cond:
            assert not service._queue
        assert service.counters["overload_rejections"] == 1
        # A batch within the bound still solves normally.
        responses = service.solve_batch([
            SolveRequest(problem=probe, strategy="cov") for probe in good
        ])
        assert all(r.predictions.size for r in responses)
    finally:
        service.close()


def test_bad_probe_in_tick_does_not_fail_tick_mates():
    """A probe whose decision raises mid-``solve_batch`` (e.g. an
    unlabeled probe landing in an all-unseen cluster) must not fail
    its tick-mates: the scheduler falls back to per-request solves so
    only the offending request errors."""
    service = MoRERService(demo_morer(10), max_batch_size=8,
                           max_wait_ms=500)
    try:
        rng = np.random.default_rng(7)
        poison_key = ("P", "Pb")
        poison = SolveRequest(
            problem=ERProblem(*poison_key, rng.uniform(0, 1, (30, 4))),
            strategy="cov",
        )
        # Deterministic mid-batch failure: the demo regimes are too
        # well connected for a probe to form an all-unseen cluster
        # naturally, so inject the core-level error at the seam the
        # scheduler calls.
        real_solve_batch = service.morer.solve_batch

        def flaky_solve_batch(problems, oracle=None, strategy=None):
            if any(p.key == poison_key for p in problems):
                raise ValueError("cluster has no labels and no oracle")
            return real_solve_batch(problems, oracle=oracle,
                                    strategy=strategy)

        service.morer.solve_batch = flaky_solve_batch
        good = [
            SolveRequest(problem=probe, strategy="cov")
            for probe in demo_probes(3, seed=14)
        ]
        futures = [service.submit(request)
                   for request in good[:1] + [poison] + good[1:]]
        with pytest.raises(InvalidRequest, match="no labels"):
            futures[1].result(timeout=30)
        for future in futures[:1] + futures[2:]:
            assert future.result(timeout=30).predictions.size
        # The scheduler survived the failed tick and keeps serving.
        follow_up = service.solve(SolveRequest(
            problem=make_problem("FT", "FTb", seed=15), strategy="cov"
        ))
        assert follow_up.predictions.size
    finally:
        service.close()


def test_close_drains_queued_requests_then_rejects():
    service = MoRERService(demo_morer(8), max_batch_size=2, max_wait_ms=50)
    futures = [
        service.submit(SolveRequest(problem=probe, strategy="cov"))
        for probe in demo_probes(4, seed=31)
    ]
    service.close()
    for future in futures:
        assert future.result(timeout=5).predictions.size
    from repro.service import ServiceError
    with pytest.raises(ServiceError, match="closed"):
        service.solve(SolveRequest(problem=demo_probes(1)[0],
                                   strategy="cov"))
    assert service.healthz()["status"] == "closed"


# -- concurrent access (satellite) --------------------------------------------------


def _hammer(fn, n, errors):
    def run():
        try:
            for _ in range(n):
                fn()
        except BaseException as exc:  # noqa: BLE001 - collected for assert
            errors.append(exc)
    return threading.Thread(target=run)


def test_threaded_base_solves_during_cov_solves():
    service = MoRERService(demo_morer(12), max_batch_size=4, max_wait_ms=10)
    try:
        base_probes = [p.without_labels() for p in demo_probes(4, seed=5)]
        errors, outcomes = [], []

        def one_base():
            probe = base_probes[len(outcomes) % len(base_probes)]
            response = service.solve(
                SolveRequest(problem=probe, strategy="base")
            )
            outcomes.append(response.cluster_id)

        threads = [_hammer(one_base, 15, errors) for _ in range(4)]
        for thread in threads:
            thread.start()
        cov_responses = service.solve_batch([
            SolveRequest(problem=probe, strategy="cov")
            for probe in demo_probes(8, seed=45)
        ])
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        assert len(outcomes) == 60
        valid_ids = set(service.morer.repository.entries)
        assert set(outcomes) <= valid_ids
        assert len(cov_responses) == 8
        assert all(r.predictions.size for r in cov_responses)
        stats = service.stats()
        assert stats.service["base_solves"] == 60
        assert stats.service["cov_solves"] == 8
    finally:
        service.close()


def test_save_under_concurrent_load_round_trips(tmp_path):
    service = MoRERService(demo_morer(10), max_batch_size=4, max_wait_ms=10)
    store = tmp_path / "served_store"
    try:
        errors = []
        base_probe = demo_probes(1, seed=8)[0].without_labels()

        def one_base():
            service.solve(SolveRequest(problem=base_probe,
                                       strategy="base"))

        def one_cov():
            probe = demo_probes(
                1, seed=int(1000 * time.monotonic()) % 100000
            )[0]
            service.solve(SolveRequest(problem=probe, strategy="cov"))

        threads = [_hammer(one_base, 10, errors) for _ in range(3)]
        threads.append(_hammer(one_cov, 3, errors))
        for thread in threads:
            thread.start()
        service.save(store)
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        assert service.counters["saves"] == 1
    finally:
        service.close()
    restored = MoRER.load(store)
    result = restored.solve(demo_probes(1, seed=9)[0])
    assert result.predictions.size


def test_retain_unsaved_journal_until_save(tmp_path):
    service = MoRERService(
        demo_morer(8), max_batch_size=4, max_wait_ms=10,
        retain_unsaved_journal=True,
    )
    try:
        service.solve_batch([
            SolveRequest(problem=probe, strategy="cov")
            for probe in demo_probes(3, seed=60)
        ])
        graph = service.morer.problem_graph
        # The saver consumer pinned every unsaved insertion even though
        # the live partition cursor already replayed past them.
        assert graph.journal_length >= 3
        service.save(tmp_path / "store")
        service.solve(SolveRequest(
            problem=make_problem("ZZ", "ZZb", seed=61), strategy="cov"
        ))
        # Post-save solve trims the saved prefix; only the new insert
        # (newer than the saver cursor) remains pinned.
        assert graph.journal_length == 1
    finally:
        service.close()
