"""Service-layer durability tests: degraded mode under injected WAL
failures, per-item solve_batch envelopes (in-process and over HTTP),
client retry policy, scheduler-driven checkpoints, and the CLI's
recover-on-startup path."""

import json
import threading

import pytest

from repro.cli import build_parser
from repro.core import MoRER
from repro.durability import faults, read_wal
from repro.service import (
    InvalidRequest,
    MoRERService,
    Overloaded,
    ServiceClient,
    ServiceError,
    ServiceHTTPServer,
    SolveResponse,
    TransportError,
    Unavailable,
)
from repro.service.fixtures import demo_morer, demo_probes


@pytest.fixture(autouse=True)
def _disarm_faults():
    faults.clear()
    yield
    faults.clear()


def _bad_probe():
    """A probe whose feature count violates the repository schema."""
    probe = demo_probes(1, seed=55)[0]
    data = probe.to_dict()
    data["features"] = [row + [0.5] for row in data["features"]]
    data["feature_names"] = None
    from repro.core import ERProblem

    return ERProblem.from_dict(data)


# -- degraded mode -----------------------------------------------------------------


def test_wal_failure_degrades_but_base_path_survives(tmp_path):
    service = MoRERService(demo_morer(10), wal_dir=tmp_path / "wal")
    probes = demo_probes(4, seed=11)
    service.solve(probes[0])                      # healthy cov solve
    faults.install("error:wal.pre_fsync")
    with pytest.raises(Unavailable):
        service.solve(probes[1])
    faults.clear()
    # Degraded sticks: later mutations are rejected at admission...
    with pytest.raises(Unavailable, match="degraded"):
        service.solve(probes[2])
    # ...read-only solves, stats and health keep answering.
    base = service.solve({
        "problem": probes[3].without_labels().to_dict(),
        "strategy": "base",
    })
    assert isinstance(base, SolveResponse) and base.predictions.size
    health = service.healthz()
    assert health["status"] == "degraded"
    assert health["ready"] is False and health["live"] is True
    assert health["wal"]["degraded_reason"]
    stats = service.stats()
    assert stats.service["degraded"] is True
    assert stats.service["unavailable_rejections"] >= 1
    assert stats.service["wal_failures"] == 1
    service.close()


def test_degraded_solve_batch_envelopes_keep_base_members(tmp_path):
    service = MoRERService(demo_morer(10), wal_dir=tmp_path / "wal")
    faults.install("error:wal.pre_append")
    probes = demo_probes(3, seed=12)
    with pytest.raises(Unavailable):
        service.solve(probes[0])
    faults.clear()
    outcomes = service.solve_batch_envelopes([
        {"problem": probes[1].to_dict(), "strategy": "cov"},
        {"problem": probes[2].without_labels().to_dict(),
         "strategy": "base"},
    ])
    assert isinstance(outcomes[0], Unavailable)
    assert isinstance(outcomes[1], SolveResponse)
    service.close()


def test_non_wal_service_never_degrades(tmp_path):
    service = MoRERService(demo_morer(8))
    health = service.healthz()
    assert health["status"] == "ok" and health["ready"] is True
    assert "wal" not in health
    assert service.stats().service["wal_enabled"] is False
    service.close()


# -- per-item envelopes ------------------------------------------------------------


def test_solve_batch_envelopes_isolate_a_poisoned_member(tmp_path):
    service = MoRERService(demo_morer(10))
    good = demo_probes(2, seed=13)
    outcomes = service.solve_batch_envelopes([
        good[0],
        _bad_probe(),
        good[1],
    ])
    assert isinstance(outcomes[0], SolveResponse)
    assert isinstance(outcomes[1], InvalidRequest)
    assert isinstance(outcomes[2], SolveResponse)
    service.close()


def test_solve_batch_envelopes_whole_call_conditions_still_raise():
    from repro.core import MoRERConfig

    unfitted = MoRERService(MoRER(MoRERConfig()))
    with pytest.raises(ServiceError):
        unfitted.solve_batch_envelopes([demo_probes(1)[0]])
    unfitted.close()
    service = MoRERService(demo_morer(8), max_queue_depth=2,
                           max_batch_size=1, max_wait_ms=0)
    # Admission of cov members stays all-or-nothing under overload: a
    # batch bigger than the whole queue can never be admitted, and no
    # prefix of it may start executing.
    probes = demo_probes(8, seed=14)
    try:
        with pytest.raises(Overloaded):
            service.solve_batch_envelopes(probes)
        assert service.counters["cov_solves"] == 0
    finally:
        service.close()


# -- HTTP envelopes + client -------------------------------------------------------


@pytest.fixture
def gateway():
    service = MoRERService(demo_morer(10), max_batch_size=4, max_wait_ms=10)
    server = ServiceHTTPServer(service, ("127.0.0.1", 0))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        service.close()


def test_http_envelopes_round_trip_mixed_outcomes(gateway):
    client = ServiceClient(gateway.url)
    good = demo_probes(2, seed=15)
    outcomes = client.solve_batch(
        [good[0], _bad_probe(), good[1]], strategy="cov",
        return_errors=True,
    )
    assert isinstance(outcomes[0], SolveResponse)
    assert isinstance(outcomes[1], InvalidRequest)
    assert "features" in str(outcomes[1])
    assert isinstance(outcomes[2], SolveResponse)
    # Default contract: first failed member's typed error raises.
    with pytest.raises(InvalidRequest):
        client.solve_batch([good[0], _bad_probe()], strategy="base")


def test_livez_readyz_split(gateway):
    client = ServiceClient(gateway.url)
    assert client._request("GET", "/livez")["live"] is True
    ready = client._request("GET", "/readyz")
    assert ready["ready"] is True
    health = client.healthz()
    assert health["live"] is True and health["ready"] is True


def test_readyz_503_when_unfitted():
    from repro.core import MoRERConfig

    service = MoRERService(MoRER(MoRERConfig()))
    server = ServiceHTTPServer(service, ("127.0.0.1", 0))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        client = ServiceClient(server.url)
        with pytest.raises(ServiceError):
            client._request("GET", "/readyz")
        # /livez still answers 200: the process is alive, just not ready.
        assert client._request("GET", "/livez")["live"] is True
    finally:
        server.shutdown()
        server.server_close()
        service.close()


def test_client_retries_idempotent_calls(monkeypatch):
    client = ServiceClient("http://127.0.0.1:1", retries=3, backoff=0.0,
                           backoff_max=0.0)
    calls = {"n": 0}

    def flaky(method, path, payload=None):
        calls["n"] += 1
        if calls["n"] < 3:
            raise TransportError("connection refused")
        return {"live": True}

    monkeypatch.setattr(client, "_request_once", flaky)
    assert client._request("GET", "/livez", idempotent=True)["live"]
    assert calls["n"] == 3


def test_client_never_retries_mutations(monkeypatch):
    client = ServiceClient("http://127.0.0.1:1", retries=3, backoff=0.0)
    calls = {"n": 0}

    def always_down(method, path, payload=None):
        calls["n"] += 1
        raise TransportError("connection refused")

    monkeypatch.setattr(client, "_request_once", always_down)
    with pytest.raises(TransportError):
        client.solve(demo_probes(1)[0], strategy="cov")
    assert calls["n"] == 1                      # cov: no retry
    calls["n"] = 0
    with pytest.raises(TransportError):
        client.fit(demo_probes(1))
    assert calls["n"] == 1                      # fit: no retry
    calls["n"] = 0
    with pytest.raises(TransportError):
        client.solve(demo_probes(1)[0], strategy="base")
    assert calls["n"] == 4                      # base: 1 + 3 retries


def test_client_retries_only_retryable_errors(monkeypatch):
    client = ServiceClient("http://127.0.0.1:1", retries=3, backoff=0.0)
    calls = {"n": 0}

    def invalid(method, path, payload=None):
        calls["n"] += 1
        raise InvalidRequest("bad payload")

    monkeypatch.setattr(client, "_request_once", invalid)
    with pytest.raises(InvalidRequest):
        client._request("GET", "/stats", idempotent=True)
    assert calls["n"] == 1


# -- scheduler checkpoints ---------------------------------------------------------


def test_checkpoint_every_snapshots_and_truncates(tmp_path):
    store, wal_dir = tmp_path / "store", tmp_path / "wal"
    service = MoRERService(
        demo_morer(10), wal_dir=wal_dir, checkpoint_store=store,
        checkpoint_every=2, max_wait_ms=0,
    )
    for probe in demo_probes(5, seed=16):
        service.solve(probe)
    service.close()
    assert service.counters["checkpoints"] >= 1
    assert store.is_dir()
    manifest = json.loads((store / "durability.json").read_text())
    assert manifest["wal_seq"] >= 2
    # The WAL tail holds only what the last checkpoint didn't absorb.
    _, report = read_wal(wal_dir)
    assert report.n_records <= 5


def test_checkpoint_every_requires_store():
    with pytest.raises(InvalidRequest, match="checkpoint_store"):
        MoRERService(demo_morer(6), checkpoint_every=3)


def test_repeated_checkpoint_failures_surface_and_degrade(
    tmp_path, monkeypatch, capsys
):
    store, wal_dir = tmp_path / "store", tmp_path / "wal"
    service = MoRERService(
        demo_morer(10), wal_dir=wal_dir, checkpoint_store=store,
        checkpoint_every=1, max_wait_ms=0,
    )

    def unsavable(path, extras=None):
        raise OSError("disk full")

    monkeypatch.setattr(service._morer, "save", unsavable)
    # Sequential blocking solves: one tick each, one checkpoint attempt
    # each; the third consecutive failure trips degraded mode.
    for probe in demo_probes(service.CHECKPOINT_FAILURE_LIMIT, seed=31):
        service.solve(probe)
    service.close()          # drains the scheduler: all attempts done
    stats = service.stats().service
    assert stats["checkpoint_failures"] >= service.CHECKPOINT_FAILURE_LIMIT
    assert "disk full" in stats["last_checkpoint_error"]
    assert stats["degraded"] is True
    assert "checkpoint" in service._degraded_reason
    assert "disk full" in capsys.readouterr().err


# -- CLI recovery ------------------------------------------------------------------


def test_cli_serve_flags_parse():
    args = build_parser().parse_args([
        "serve", "--store", "s", "--wal-dir", "w", "--fsync", "interval",
        "--fsync-interval-ms", "20", "--checkpoint-every", "64",
    ])
    assert args.wal_dir == "w" and args.fsync == "interval"
    assert args.fsync_interval_ms == 20.0
    assert args.checkpoint_every == 64
    assert args.force_bootstrap is False
    args = build_parser().parse_args([
        "serve", "--store", "s", "--wal-dir", "w", "--demo",
        "--force-bootstrap",
    ])
    assert args.force_bootstrap is True


def test_cli_wal_dir_requires_store(tmp_path):
    from repro.cli import _serve

    args = build_parser().parse_args(
        ["serve", "--demo", "4", "--wal-dir", str(tmp_path / "wal")]
    )
    with pytest.raises(SystemExit, match="requires --store"):
        _serve(args)


def _stranded_wal(tmp_path, n_records=2):
    """A WAL holding acked solve records that cannot replay onto a
    fitted instance (the fit rotated out at a past checkpoint) next to
    a missing/unloadable store — the post-checkpoint disaster state."""
    from repro.core import MoRERConfig
    from repro.durability import WriteAheadLog

    store, wal_dir = tmp_path / "store", tmp_path / "wal"
    with WriteAheadLog(wal_dir, config=MoRERConfig().to_dict()) as wal:
        for probe in demo_probes(n_records, seed=23):
            wal.append({
                "kind": "solve_batch",
                "problems": [probe.to_dict()],
            })
    return store, wal_dir


def test_cli_refuses_demo_bootstrap_over_unreplayable_wal(tmp_path):
    from repro.cli import _serve

    store, wal_dir = _stranded_wal(tmp_path)
    args = build_parser().parse_args([
        "serve", "--store", str(store), "--wal-dir", str(wal_dir),
        "--demo", "4",
    ])
    # Bootstrapping would checkpoint over the stranded records and
    # truncate them away — refuse unless explicitly forced.
    with pytest.raises(SystemExit, match="refusing --demo bootstrap"):
        _serve(args)
    _, report = read_wal(wal_dir)
    assert report.n_records == 2      # nothing was discarded


def test_cli_without_demo_reports_stranded_wal(tmp_path):
    from repro.cli import _serve

    store, wal_dir = _stranded_wal(tmp_path)
    args = build_parser().parse_args([
        "serve", "--store", str(store), "--wal-dir", str(wal_dir),
    ])
    with pytest.raises(SystemExit, match="cannot recover"):
        _serve(args)
    _, report = read_wal(wal_dir)
    assert report.n_records == 2


def test_cli_force_bootstrap_discards_deliberately(tmp_path, monkeypatch):
    from repro.cli import _serve

    store, wal_dir = _stranded_wal(tmp_path)
    served = {}

    class _FakeServer:
        def __init__(self, svc, address, log_requests=False):
            served["service"] = svc
            self.url = "fake"

        def serve_forever(self):
            raise KeyboardInterrupt

        def shutdown(self):
            pass

        def server_close(self):
            pass

    monkeypatch.setattr("repro.service.ServiceHTTPServer", _FakeServer)
    args = build_parser().parse_args([
        "serve", "--store", str(store), "--wal-dir", str(wal_dir),
        "--demo", "4", "--force-bootstrap",
    ])
    _serve(args)
    assert served["service"].morer.repository is not None
    assert store.is_dir()             # bootstrap checkpointed the store
    _, report = read_wal(wal_dir)
    assert report.n_records == 0      # the stranded records are gone


def test_cli_recovery_replays_and_checkpoints(tmp_path, monkeypatch):
    store, wal_dir = tmp_path / "store", tmp_path / "wal"
    live = demo_morer(10)
    service = MoRERService(live, wal_dir=wal_dir)
    service.save(store)
    for probe in demo_probes(3, seed=17):
        service.solve(probe)
    service.close()                      # crash-equivalent: WAL has a tail

    served = {}

    class _FakeServer:
        def __init__(self, svc, address, log_requests=False):
            served["service"] = svc
            self.url = "fake"

        def serve_forever(self):
            raise KeyboardInterrupt

        def shutdown(self):
            pass

        def server_close(self):
            pass

    import repro.cli as cli_mod

    monkeypatch.setattr(
        "repro.service.ServiceHTTPServer", _FakeServer
    )
    args = build_parser().parse_args([
        "serve", "--store", str(store), "--wal-dir", str(wal_dir),
    ])
    cli_mod._serve(args)
    recovered = served["service"].morer
    assert recovered.problem_graph.version == live.problem_graph.version
    assert (
        recovered._rng.bit_generator.state == live._rng.bit_generator.state
    )
    # Startup checkpointed the replayed state: the store now absorbs
    # the tail and the WAL is empty again.
    restored = MoRER.load(store)
    assert restored.problem_graph.version == live.problem_graph.version
    _, report = read_wal(wal_dir)
    assert report.n_records == 0
