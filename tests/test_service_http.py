"""HTTP gateway + typed client end-to-end tests (loopback, ephemeral
port): routing, JSON (de)serialisation, typed error status mapping,
and fit -> solve -> save through the wire."""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core import MoRER
from repro.service import (
    InvalidRequest,
    MoRERService,
    NotFitted,
    ServiceClient,
    ServiceError,
    ServiceHTTPServer,
    SolveRequest,
)
from repro.service.fixtures import demo_morer, demo_probes, demo_problems


@pytest.fixture
def gateway():
    """A served fixture repository on an ephemeral loopback port."""
    service = MoRERService(demo_morer(10), max_batch_size=4, max_wait_ms=10)
    server = ServiceHTTPServer(service, ("127.0.0.1", 0))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        service.close()


def test_healthz_and_stats(gateway):
    client = ServiceClient(gateway.url)
    health = client.wait_ready(timeout=5)
    assert health["status"] == "ok" and health["fitted"] is True
    stats = client.stats()
    assert stats.fitted and stats.n_entries >= 1
    assert stats.n_problems == 10
    assert stats.service["max_batch_size"] == 4


def test_solve_over_http_matches_in_process(gateway):
    probe = demo_probes(1)[0].without_labels()
    client = ServiceClient(gateway.url)
    remote = client.solve(probe, strategy="base")
    direct = demo_morer(10).solve(probe, strategy="base")
    assert remote.cluster_id == direct.cluster_id
    assert np.array_equal(remote.predictions, direct.predictions)
    assert remote.similarity == pytest.approx(direct.similarity)


def test_solve_batch_over_http_coalesces(gateway):
    client = ServiceClient(gateway.url)
    probes = demo_probes(4, seed=21)
    responses = client.solve_batch(probes, strategy="cov")
    assert len(responses) == 4
    assert all(r.predictions.size for r in responses)
    # The gateway enqueued the whole batch before blocking, so the
    # scheduler saw them together.
    assert gateway.service.counters["batches_dispatched"] >= 1
    assert gateway.service.counters["max_coalesced"] >= 2


def test_save_endpoint_round_trips(gateway, tmp_path):
    client = ServiceClient(gateway.url)
    client.solve_batch(demo_probes(2, seed=33), strategy="cov")
    store = tmp_path / "http_store"
    assert client.save(store) == str(store)
    restored = MoRER.load(store)
    assert restored.solve(demo_probes(1, seed=34)[0]).predictions.size


def test_error_status_mapping():
    service = MoRERService(MoRER(
        selection="cov", model_generation="supervised",
        classifier="logistic_regression", random_state=0,
    ))
    server = ServiceHTTPServer(service, ("127.0.0.1", 0))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(server.url)
    try:
        client.wait_ready(timeout=5)
        # 409 not_fitted, re-raised as the typed error.
        with pytest.raises(NotFitted):
            client.solve(demo_probes(1)[0])
        # 400 invalid_request for malformed payloads.
        with pytest.raises(InvalidRequest):
            client._request("POST", "/solve", {"problem": {"nope": 1}})
        # Invalid JSON body -> 400 with a JSON error envelope.
        request = urllib.request.Request(
            server.url + "/solve", data=b"{not json",
            headers={"Content-Type": "application/json"}, method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 400
        envelope = json.loads(excinfo.value.read().decode("utf-8"))
        assert envelope["error"]["code"] == "invalid_request"
        # Unknown route -> 404, surfaced as a generic ServiceError.
        with pytest.raises(ServiceError, match="no route /nope"):
            client._request("GET", "/nope")
        # Fit over the wire, then the same solve succeeds.
        stats = client.fit(demo_problems(8))
        assert stats.fitted and stats.n_problems == 8
        assert client.solve(demo_probes(1)[0]).predictions.size
        # Refit -> 400 invalid_request.
        with pytest.raises(InvalidRequest, match="already fitted"):
            client.fit(demo_problems(8))
    finally:
        server.shutdown()
        server.server_close()
        service.close()


def test_keep_alive_survives_posting_to_unknown_route(gateway):
    """A 404 must drain the request body so the next request on the
    same persistent connection parses cleanly."""
    import http.client

    host, port = gateway.server_address[:2]
    connection = http.client.HTTPConnection(host, port, timeout=10)
    try:
        body = json.dumps({"some": "payload" * 50})
        connection.request("POST", "/nope", body=body,
                           headers={"Content-Type": "application/json"})
        reply = connection.getresponse()
        assert reply.status == 404
        reply.read()
        # Same socket, second request: must not see leftover body bytes.
        probe = demo_probes(1, seed=42)[0]
        connection.request(
            "POST", "/solve",
            body=json.dumps(
                SolveRequest(problem=probe, strategy="base").to_dict()
            ),
            headers={"Content-Type": "application/json"},
        )
        reply = connection.getresponse()
        assert reply.status == 200
        payload = json.loads(reply.read().decode("utf-8"))
        assert payload["predictions"]
    finally:
        connection.close()


def test_concurrent_http_clients_coalesce():
    service = MoRERService(demo_morer(12), max_batch_size=8,
                           max_wait_ms=150)
    server = ServiceHTTPServer(service, ("127.0.0.1", 0))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        client = ServiceClient(server.url)
        client.wait_ready(timeout=5)
        probes = demo_probes(8, seed=71)
        responses = [None] * len(probes)
        errors = []

        def one(i):
            try:
                responses[i] = client.solve(
                    SolveRequest(problem=probes[i], strategy="cov")
                )
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=one, args=(i,))
            for i in range(len(probes))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors, errors
        assert all(r is not None and r.predictions.size for r in responses)
        # 8 concurrent clients produced fewer than 8 ticks.
        assert service.counters["batches_dispatched"] < len(probes)
        assert service.counters["max_coalesced"] >= 2
    finally:
        server.shutdown()
        server.server_close()
        service.close()
