"""Signature subsystem tests: raw/fast equivalence + cache behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ClassifierTwoSampleTest,
    ERProblemGraph,
    KolmogorovSmirnovTest,
    ModelRepository,
    MoRER,
    ProblemSignature,
    SignatureStore,
    make_distribution_test,
    pairwise_similarities,
    supports_signatures,
)
from repro.ml import RandomForestClassifier
from tests.conftest import make_problem, make_problem_family

TOLERANCE = 1e-9


def _equivalence_cases():
    rng = np.random.default_rng(7)
    return {
        "random": (rng.random((80, 5)), rng.random((120, 5))),
        "shifted": (
            np.clip(rng.normal(0.3, 0.1, (60, 6)), 0, 1),
            np.clip(rng.normal(0.7, 0.1, (90, 6)), 0, 1),
        ),
        "constant": (np.full((50, 3), 0.5), np.full((70, 3), 0.5)),
        "tiny": (rng.random((1, 4)), rng.random((2, 4))),
        "heavy-ties": (
            np.round(rng.random((100, 4)), 1),
            np.round(rng.random((130, 4)), 1),
        ),
        "mixed-constant-feature": (
            np.column_stack([np.full(40, 0.5), rng.random(40)]),
            np.column_stack([np.full(55, 0.5), rng.random(55)]),
        ),
        "boundary-values": (
            np.clip(np.round(rng.random((60, 3)) * 2 - 0.5, 2), 0, 1),
            np.clip(np.round(rng.random((80, 3)) * 2 - 0.5, 2), 0, 1),
        ),
    }


CASES = _equivalence_cases()
#: C2ST needs enough samples per class for stratified 2-fold CV.
C2ST_SKIP = {"tiny"}


@pytest.mark.parametrize("case", sorted(CASES))
@pytest.mark.parametrize("name", ["ks", "wd", "psi", "c2st"])
def test_signature_similarity_matches_raw(name, case):
    if name == "c2st" and case in C2ST_SKIP:
        pytest.skip("C2ST needs larger samples for cross-validation")
    a, b = CASES[case]
    test = make_distribution_test(name)
    raw = test.problem_similarity(a, b)
    fast = test.signature_similarity(ProblemSignature(a), ProblemSignature(b))
    assert abs(raw - fast) < TOLERANCE


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000))
def test_signature_equivalence_property(seed):
    """Property: signature and raw paths agree for random shapes/data."""
    rng = np.random.default_rng(seed)
    n_features = int(rng.integers(1, 8))
    a = rng.random((int(rng.integers(1, 60)), n_features))
    b = rng.random((int(rng.integers(1, 60)), n_features))
    sig_a, sig_b = ProblemSignature(a), ProblemSignature(b)
    for name in ("ks", "wd", "psi"):
        test = make_distribution_test(name)
        raw = test.problem_similarity(a, b)
        fast = test.signature_similarity(sig_a, sig_b)
        assert abs(raw - fast) < TOLERANCE, name


def test_signature_feature_space_mismatch_rejected():
    test = KolmogorovSmirnovTest()
    with pytest.raises(ValueError, match="feature space"):
        test.signature_similarity(
            ProblemSignature(np.ones((5, 3)) * 0.5),
            ProblemSignature(np.ones((5, 4)) * 0.5),
        )


def test_signature_validation():
    with pytest.raises(ValueError, match="2-d"):
        ProblemSignature(np.ones(3))
    with pytest.raises(ValueError, match="at least one"):
        ProblemSignature(np.empty((0, 2)))
    # Out-of-range values would silently break the offset-flattened
    # searchsorted kernels, so they must be rejected loudly.
    for bad in (np.full((3, 2), 1.5), np.full((3, 2), -0.5),
                np.array([[0.5, np.nan]])):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            ProblemSignature(bad)


def test_signature_accepts_problem_objects():
    problem = make_problem()
    signature = ProblemSignature(problem)
    assert signature.features is problem.features
    assert signature.n_samples == problem.n_pairs


def test_signature_histogram_matches_numpy():
    rng = np.random.default_rng(3)
    features = rng.random((150, 4))
    signature = ProblemSignature(features)
    for n_bins in (2, 10, 100):
        counts = signature.histogram(n_bins)
        edges = np.linspace(0.0, 1.0, n_bins + 1)
        for f in range(4):
            reference, _ = np.histogram(
                np.clip(features[:, f], 0, 1), bins=edges
            )
            assert np.array_equal(counts[f], reference)
        # Memoized: second call returns the identical array object.
        assert signature.histogram(n_bins) is counts


def test_pairwise_similarities_matches_pair_loop():
    problems = make_problem_family(5)
    test = make_distribution_test("ks")
    signatures = [ProblemSignature(p) for p in problems]
    matrix = pairwise_similarities(signatures, test)
    assert matrix.shape == (5, 5)
    assert np.array_equal(matrix, matrix.T)
    for i in range(5):
        for j in range(i):
            raw = test.problem_similarity(
                problems[i].features, problems[j].features
            )
            assert abs(matrix[i, j] - raw) < TOLERANCE


def test_pairwise_similarities_preserves_c2st_orientation():
    """For order-asymmetric tests both triangles are computed, so
    matrix[i, j] is always sim_p(i, j) in that orientation."""
    problems = make_problem_family(3)
    test = make_distribution_test("c2st")
    signatures = [ProblemSignature(p) for p in problems]
    matrix = pairwise_similarities(signatures, test)
    for i in range(3):
        for j in range(3):
            if i == j:
                continue
            raw = test.problem_similarity(
                problems[i].features, problems[j].features
            )
            assert matrix[i, j] == pytest.approx(raw, abs=TOLERANCE), (i, j)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_wd_psi_matrix_equivalence_property(seed):
    """Property: the batched WD/PSI matrix kernels agree with per-pair
    ``signature_similarity`` below 1e-9, mirroring the KS suite.

    Covers both the equal-size fast branch (quantile form for WD,
    stacked proportions for PSI) and the mixed-size fallback.
    """
    rng = np.random.default_rng(seed)
    n_problems = int(rng.integers(3, 7))
    n_features = int(rng.integers(1, 5))
    uniform = bool(rng.integers(0, 2))
    base = int(rng.integers(5, 40))
    matrices = [
        rng.random((base if uniform else int(rng.integers(2, 40)),
                    n_features))
        for _ in range(n_problems)
    ]
    if rng.integers(0, 2):  # exercise the constant-weight fallback
        matrices[0] = np.full_like(matrices[0], 0.5)
    signatures = [ProblemSignature(m) for m in matrices]
    for name in ("wd", "psi"):
        test = make_distribution_test(name)
        matrix = test.signature_similarity_matrix(signatures)
        assert np.array_equal(matrix, matrix.T), name
        for i in range(n_problems):
            assert matrix[i, i] == 1.0
            for j in range(i):
                raw = test.signature_similarity(
                    signatures[i], signatures[j]
                )
                assert abs(matrix[i, j] - raw) < TOLERANCE, (name, i, j)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_signature_similarity_many_equivalence_property(seed):
    """Property: the one-vs-many search kernels agree with per-pair
    ``signature_similarity`` below 1e-9 for KS, WD and PSI."""
    rng = np.random.default_rng(seed)
    n_candidates = int(rng.integers(1, 6))
    n_features = int(rng.integers(1, 5))
    uniform = bool(rng.integers(0, 2))
    base = int(rng.integers(5, 40))
    probe = ProblemSignature(rng.random((base, n_features)))
    candidates = [
        ProblemSignature(
            rng.random((base if uniform else int(rng.integers(2, 40)),
                        n_features))
        )
        for _ in range(n_candidates)
    ]
    for name in ("ks", "wd", "psi"):
        test = make_distribution_test(name)
        many = test.signature_similarity_many(probe, candidates)
        assert many.shape == (n_candidates,)
        for j, candidate in enumerate(candidates):
            raw = test.signature_similarity(probe, candidate)
            assert abs(many[j] - raw) < TOLERANCE, (name, j)


def test_wd_matrix_mixed_sizes_uses_grid_batch_not_pair_fallback():
    """The mixed-sample-size branch must run the merged-quantile-grid
    batch (one block per size-group pair), never the old per-pair
    integration, and stay pinned to the pair path below 1e-9."""
    rng = np.random.default_rng(17)
    sizes = [1, 2, 9, 30, 30, 47, 9]
    signatures = [ProblemSignature(rng.random((s, 3))) for s in sizes]
    test = make_distribution_test("wd")
    pair_calls = []
    original = test._signature_feature_similarities

    def spy(sig_a, sig_b):
        pair_calls.append((sig_a.n_samples, sig_b.n_samples))
        return original(sig_a, sig_b)

    test._signature_feature_similarities = spy
    matrix = test.signature_similarity_matrix(signatures)
    many = test.signature_similarity_many(signatures[0], signatures[1:])
    assert pair_calls == []
    for i in range(len(sizes)):
        for j in range(i):
            raw = test.signature_similarity(signatures[i], signatures[j])
            assert abs(matrix[i, j] - raw) < TOLERANCE, (i, j)
    for j, signature in enumerate(signatures[1:]):
        raw = test.signature_similarity(signatures[0], signature)
        assert abs(many[j] - raw) < TOLERANCE, j
    # Grids are memoized per size pair: a second call adds no entries.
    n_grids = len(test._grid_cache)
    test.signature_similarity_matrix(signatures)
    assert len(test._grid_cache) == n_grids


@pytest.mark.parametrize("name", ["wd", "psi"])
def test_wd_psi_matrix_rejects_feature_space_mismatch(name):
    test = make_distribution_test(name)
    signatures = [
        ProblemSignature(np.full((5, 3), 0.5)),
        ProblemSignature(np.full((5, 4), 0.5)),
    ]
    with pytest.raises(ValueError, match="feature space"):
        test.signature_similarity_matrix(signatures)
    with pytest.raises(ValueError, match="feature space"):
        test.signature_similarity_many(signatures[0], signatures[1:])


@pytest.mark.parametrize("name", ["wd", "psi"])
def test_graph_build_uses_batched_wd_psi(name):
    """pairwise_similarities must route WD/PSI through their new matrix
    kernels (KS already had one)."""
    problems = make_problem_family(5)
    signatures = [ProblemSignature(p) for p in problems]
    test = make_distribution_test(name)
    calls = []
    original = test.signature_similarity_matrix

    def spy(sigs):
        calls.append(len(sigs))
        return original(sigs)

    test.signature_similarity_matrix = spy
    matrix = pairwise_similarities(signatures, test)
    assert calls == [5]
    for i in range(5):
        for j in range(i):
            raw = test.problem_similarity(
                problems[i].features, problems[j].features
            )
            assert abs(matrix[i, j] - raw) < TOLERANCE


def test_ks_matrix_handles_unequal_sizes_and_constant_features():
    """The batched KS kernel's non-uniform and constant-weight branches
    must match the pair path."""
    rng = np.random.default_rng(11)
    matrices = [
        rng.random((30, 3)),
        rng.random((47, 3)),
        np.full((12, 3), 0.5),          # constant: uniform-weight fallback
        np.round(rng.random((60, 3)), 1),
        np.full((25, 3), 0.5),          # second constant problem
    ]
    test = make_distribution_test("ks")
    signatures = [ProblemSignature(m) for m in matrices]
    matrix = test.signature_similarity_matrix(signatures)
    for i in range(len(matrices)):
        assert matrix[i, i] == 1.0
        for j in range(i):
            raw = test.problem_similarity(matrices[i], matrices[j])
            assert abs(matrix[i, j] - raw) < TOLERANCE
    mismatched = signatures + [ProblemSignature(rng.random((10, 5)))]
    with pytest.raises(ValueError, match="feature space"):
        test.signature_similarity_matrix(mismatched)


# -- signature store ---------------------------------------------------------------


def test_signature_store_reuses_identical_features():
    store = SignatureStore(max_size=4)
    problem = make_problem()
    first = store.signature(problem.key, problem.features)
    second = store.signature(problem.key, problem.features)
    assert first is second
    assert len(store) == 1


def test_signature_store_recomputes_on_changed_features():
    store = SignatureStore(max_size=4)
    key = ("A", "B")
    rng = np.random.default_rng(0)
    first = store.signature(key, rng.random((10, 2)))
    replacement = rng.random((10, 2))
    second = store.signature(key, replacement)
    assert second is not first
    assert second.features is replacement


def test_signature_store_lru_eviction():
    store = SignatureStore(max_size=2)
    rng = np.random.default_rng(1)
    matrices = {k: rng.random((5, 2)) for k in "abc"}
    store.signature("a", matrices["a"])
    store.signature("b", matrices["b"])
    store.signature("a", matrices["a"])  # touch: "b" is now oldest
    store.signature("c", matrices["c"])
    assert "a" in store and "c" in store
    assert "b" not in store


def test_signature_store_invalidate_and_clear():
    store = SignatureStore(max_size=4)
    store.signature("a", np.ones((3, 2)) * 0.5)
    assert store.invalidate("a")
    assert not store.invalidate("a")
    store.signature("a", np.ones((3, 2)) * 0.5)
    store.clear()
    assert len(store) == 0
    with pytest.raises(ValueError, match="max_size"):
        SignatureStore(max_size=0)


def test_supports_signatures():
    assert supports_signatures(make_distribution_test("ks"))
    assert supports_signatures(make_distribution_test("c2st"))

    class Legacy:
        def problem_similarity(self, a, b):
            return 1.0

    assert not supports_signatures(Legacy())


# -- graph integration -------------------------------------------------------------


class _CountingKS(KolmogorovSmirnovTest):
    """KS test that counts signature-path pair evaluations."""

    def __init__(self):
        super().__init__()
        self.calls = 0

    def signature_similarity(self, signature_a, signature_b):
        self.calls += 1
        return super().signature_similarity(signature_a, signature_b)

    def signature_similarity_matrix(self, signatures):
        self.calls += len(signatures) * (len(signatures) - 1) // 2
        return super().signature_similarity_matrix(signatures)


@pytest.mark.parametrize("name", ["ks", "wd", "psi"])
def test_graph_build_matches_naive_path(name):
    problems = make_problem_family(6)
    fast = ERProblemGraph.build(problems, name)
    naive = ERProblemGraph.build(problems, name, use_signatures=False)
    assert fast.use_signatures and not naive.use_signatures
    keys = [p.key for p in problems]
    deviations = [
        abs(fast.similarity(keys[i], keys[j]) - naive.similarity(keys[i], keys[j]))
        for i in range(len(keys))
        for j in range(i)
    ]
    assert max(deviations) < TOLERANCE


def test_graph_pair_cache_survives_reinsertion():
    test = _CountingKS()
    problems = make_problem_family(4)
    graph = ERProblemGraph.build(problems, test)
    calls_after_build = test.calls
    assert calls_after_build == 6  # C(4, 2)
    target = problems[0]
    graph.remove_problem(target.key)
    graph.add_problem(target)
    # All pair similarities were memoized: no recomputation at all.
    assert test.calls == calls_after_build
    naive = ERProblemGraph.build(problems, "ks", use_signatures=False)
    for other in problems[1:]:
        assert abs(
            graph.similarity(target.key, other.key)
            - naive.similarity(target.key, other.key)
        ) < TOLERANCE


def test_graph_pair_cache_survives_signature_lru_eviction():
    """Evicting a signature from the LRU store must not purge the
    key's still-valid memoized pair similarities."""
    test = _CountingKS()
    problems = make_problem_family(4)
    graph = ERProblemGraph.build(problems, test, signature_cache_size=2)
    calls_after_build = test.calls
    assert len(graph._signatures) == 2  # the other two were evicted
    evicted = problems[0]
    assert evicted.key not in graph._signatures
    graph.remove_problem(evicted.key)
    graph.add_problem(evicted)
    assert test.calls == calls_after_build


def test_graph_pair_cache_evicted_when_features_are_garbage_collected():
    """Once a removed problem's feature matrix dies, its memoized pairs
    can never validate again and must be evicted (bounded memory).

    The matrix stays alive while the LRU signature store holds it, so
    the eviction fires only after both the external references and the
    store entry are gone — i.e. the pair cache is bounded by live data
    plus the LRU capacity.
    """
    import gc

    problems = make_problem_family(4)
    graph = ERProblemGraph.build(problems, "ks")
    victim_key = problems[0].key
    assert any(victim_key in pair for pair in graph._pair_cache)
    graph.remove_problem(victim_key)
    graph._signatures.invalidate(victim_key)  # simulate LRU eviction
    del problems[0]
    gc.collect()
    assert not any(victim_key in pair for pair in graph._pair_cache)
    assert victim_key not in graph._pair_witness
    assert victim_key not in graph._pairs_by_key


def test_graph_purges_stale_pairs_on_changed_reinsertion():
    problems = make_problem_family(4)
    graph = ERProblemGraph.build(problems, "ks")
    target = problems[0]
    graph.remove_problem(target.key)
    changed = make_problem(
        target.source_a, target.source_b, shift=0.4, seed=123
    )
    assert changed.key == target.key
    graph.add_problem(changed)
    reference = ERProblemGraph.build(
        [changed] + problems[1:], "ks", use_signatures=False
    )
    for other in problems[1:]:
        assert abs(
            graph.similarity(changed.key, other.key)
            - reference.similarity(changed.key, other.key)
        ) < TOLERANCE


def test_graph_pair_similarity_accessor():
    problems = make_problem_family(3)
    graph = ERProblemGraph.build(problems, "ks")
    raw = make_distribution_test("ks").problem_similarity(
        problems[0].features, problems[1].features
    )
    assert abs(
        graph.pair_similarity(problems[0].key, problems[1].key) - raw
    ) < TOLERANCE


class _CountingC2ST(ClassifierTwoSampleTest):
    """C2ST that counts pairwise evaluations (any path)."""

    def __init__(self):
        super().__init__()
        self.calls = 0

    def problem_similarity(self, features_a, features_b):
        self.calls += 1
        return super().problem_similarity(features_a, features_b)


def test_graph_build_evaluates_c2st_once_per_pair():
    """Batched build must not pay both orientations for asymmetric
    tests — only the lower triangle is consumed."""
    test = _CountingC2ST()
    problems = make_problem_family(4)
    ERProblemGraph.build(problems, test)
    assert test.calls == 6  # C(4, 2), same as the sequential path


def test_psi_n_bins_mutation_keeps_paths_in_sync():
    """Rebinding n_bins after construction must retune the cached edges
    so the raw and signature paths keep agreeing."""
    rng = np.random.default_rng(5)
    a, b = rng.random((60, 3)), rng.random((80, 3))
    test = make_distribution_test("psi", n_bins=10)
    test.n_bins = 20
    raw = test.problem_similarity(a, b)
    reference = make_distribution_test("psi", n_bins=20).problem_similarity(a, b)
    assert raw == pytest.approx(reference, abs=TOLERANCE)
    fast = test.signature_similarity(ProblemSignature(a), ProblemSignature(b))
    assert abs(raw - fast) < TOLERANCE
    with pytest.raises(ValueError, match="bins"):
        test.n_bins = 1


def test_repository_search_accepts_out_of_range_raw_probe():
    """Raw ndarray probes outside [0, 1] fall back to the naive path
    (which always accepted them) instead of raising."""
    problems = make_problem_family(4)
    fast = _fitted_repo(problems)
    naive = _fitted_repo(problems, use_signatures=False)
    rng = np.random.default_rng(8)
    probe = rng.normal(1.5, 2.0, (40, 4))  # clearly outside [0, 1]
    entry_fast, sim_fast = fast.search(probe)
    entry_naive, sim_naive = naive.search(probe)
    assert entry_fast.cluster_id == entry_naive.cluster_id
    assert abs(sim_fast - sim_naive) < TOLERANCE


def test_graph_pair_similarity_preserves_c2st_orientation():
    """C2ST is order-asymmetric, so pair_similarity must compute in the
    requested orientation and never serve an order-normalized cache."""
    problems = make_problem_family(3)
    graph = ERProblemGraph.build(problems, "c2st")
    assert graph.use_signatures and not graph._cache_pairs
    test = make_distribution_test("c2st")
    for a, b in [(problems[0], problems[2]), (problems[2], problems[0])]:
        raw = test.problem_similarity(a.features, b.features)
        assert graph.pair_similarity(a.key, b.key) == pytest.approx(
            raw, abs=TOLERANCE
        )


def test_signature_statistics_are_lazy():
    """C2ST's signature path must not trigger the univariate statistics
    (sorts, CDFs) it never reads."""
    problems = make_problem_family(2)
    sig_a, sig_b = ProblemSignature(problems[0]), ProblemSignature(problems[1])
    make_distribution_test("c2st").signature_similarity(sig_a, sig_b)
    assert sig_a._sorted_columns is None and sig_a._self_cdf is None
    make_distribution_test("ks").signature_similarity(sig_a, sig_b)
    assert sig_a._self_cdf is not None


def test_graph_duplicate_key_rejected_in_batch():
    problem = make_problem()
    with pytest.raises(ValueError, match="already in the graph"):
        ERProblemGraph.build([problem, problem], "ks")


# -- repository integration --------------------------------------------------------


def _fitted_repo(problems, **kwargs):
    repo = ModelRepository("ks", **kwargs)
    for i in range(0, len(problems), 2):
        group = problems[i:i + 2]
        X = np.vstack([p.features for p in group])
        y = np.concatenate([p.labels for p in group])
        model = RandomForestClassifier(n_estimators=5, random_state=0)
        model.fit(X, y)
        repo.add_entry({p.key for p in group}, model, X, y)
    return repo


def test_repository_search_matches_naive_path():
    problems = make_problem_family(6)
    fast = _fitted_repo(problems)
    naive = _fitted_repo(problems, use_signatures=False)
    for seed in range(5):
        probe = make_problem("X", "Y", shift=0.15 * (seed % 3), seed=seed)
        entry_fast, sim_fast = fast.search(probe)
        entry_naive, sim_naive = naive.search(probe)
        assert entry_fast.cluster_id == entry_naive.cluster_id
        assert abs(sim_fast - sim_naive) < TOLERANCE


def test_repository_search_top_k():
    problems = make_problem_family(6)
    repo = _fitted_repo(problems)
    probe = make_problem("X", "Y", seed=11)
    ranked = repo.search(probe, top_k=2)
    assert len(ranked) == 2
    assert ranked[0][1] >= ranked[1][1]
    best_entry, best_similarity = repo.search(probe)
    assert ranked[0][0] is best_entry
    assert ranked[0][1] == pytest.approx(best_similarity)
    # top_k beyond the entry count returns everything, best first.
    everything = repo.search(probe, top_k=100)
    assert len(everything) == len(repo)
    for bad in (0, -1, 2.5, True, "3"):
        with pytest.raises(ValueError, match="top_k"):
            repo.search(probe, top_k=bad)


def test_repository_entry_signature_invalidation():
    problems = make_problem_family(4)
    repo = _fitted_repo(problems)
    probe = make_problem("X", "Y", seed=9)
    repo.search(probe)  # populate entry signature cache
    entry = next(iter(repo.entries.values()))
    replacement = make_problem("R", "S", shift=0.4, seed=77)
    entry.training_features = replacement.features
    repo.invalidate_entry_cache(entry.cluster_id)
    _, similarity = repo.search(probe)
    naive = _fitted_repo(problems, use_signatures=False)
    naive_entry = naive.entries[entry.cluster_id]
    naive_entry.training_features = replacement.features
    _, naive_similarity = naive.search(probe)
    assert abs(similarity - naive_similarity) < TOLERANCE


def test_repository_entry_signature_identity_safety_net():
    """Replacing training_features is detected even without an explicit
    invalidate_entry_cache call (the object-identity check)."""
    problems = make_problem_family(2)
    repo = _fitted_repo(problems)
    probe = make_problem("X", "Y", seed=4)
    _, before = repo.search(probe)
    entry = next(iter(repo.entries.values()))
    entry.training_features = make_problem("R", "S", shift=0.45,
                                           seed=5).features
    _, after = repo.search(probe)
    raw = make_distribution_test("ks").problem_similarity(
        probe.features, entry.training_features
    )
    assert abs(after - raw) < TOLERANCE
    assert after != pytest.approx(before, abs=1e-6)


def test_repository_key_index_consistency():
    problems = make_problem_family(6)
    repo = _fitted_repo(problems)
    for problem in problems:
        entry = repo.entry_for_problem(problem.key)
        assert entry is not None and problem.key in entry.problem_keys
    assert repo.entry_for_problem(("nope", "nada")) is None
    # Removal drops the keys from the index.
    victim_id = next(iter(repo.entries))
    victim_keys = set(repo.entries[victim_id].problem_keys)
    repo.remove_entry(victim_id)
    for key in victim_keys:
        assert repo.entry_for_problem(key) is None


def test_repository_reassign_cluster_updates_index():
    problems = make_problem_family(6)
    repo = _fitted_repo(problems)
    entries = list(repo.entries.values())
    a, b = entries[0], entries[1]
    stolen_key = next(iter(b.problem_keys))
    dropped_key = next(iter(a.problem_keys))
    new_cluster = (set(a.problem_keys) - {dropped_key}) | {stolen_key}
    repo.reassign_cluster(a, new_cluster)
    assert a.problem_keys == new_cluster
    assert stolen_key not in b.problem_keys
    assert repo.entry_for_problem(stolen_key) is a
    assert repo.entry_for_problem(dropped_key) is None


def test_repository_index_handles_overlapping_entries():
    """sel_cov can transiently register a key in two entries; the index
    must behave like the pre-index linear scan: oldest entry wins,
    overlap counts include every containing entry, and reassigning
    strips the key from all of them."""
    problems = make_problem_family(4)
    repo = _fitted_repo(problems)  # entries 0 and 1, two problems each
    shared = problems[0].key       # lives in entry 0
    entry_0, entry_1 = repo.entries[0], repo.entries[1]
    # A newer entry claims an already-assigned key (the overlap window).
    new_id = repo.add_entry(
        {shared}, None, problems[0].features, problems[0].labels
    )
    assert repo.entry_for_problem(shared) is entry_0  # oldest wins
    from repro.core.selection import _max_overlap_entry
    counts_target = {shared, next(iter(entry_1.problem_keys))}
    # shared counts for entries 0 AND new_id; entry_1's key breaks ties.
    assert _max_overlap_entry(repo, counts_target) is entry_0
    # Reassigning to entry_1 steals the key from both containing entries.
    repo.reassign_cluster(entry_1, entry_1.problem_keys | {shared})
    assert shared not in entry_0.problem_keys
    assert shared not in repo.entries[new_id].problem_keys
    assert repo.entry_for_problem(shared) is entry_1


def test_repository_save_load_preserves_index(tmp_path):
    problems = make_problem_family(4)
    repo = _fitted_repo(problems)
    repo.save(tmp_path / "store")
    loaded = ModelRepository.load(tmp_path / "store")
    for problem in problems:
        entry = loaded.entry_for_problem(problem.key)
        assert entry is not None and problem.key in entry.problem_keys


# -- MoRER integration -------------------------------------------------------------


def test_record_cluster_counts_matches_reference():
    family = make_problem_family(6)
    morer = MoRER(b_total=120, b_min=10, random_state=0).fit(family)
    clusters = morer.clusters_
    counts = morer._record_cluster_counts(clusters)
    # Reference: the per-cluster pair_ids walk the rewrite replaced.
    reference = {}
    problems_by_key = morer.problem_graph.problems()
    for cluster in clusters:
        records = set()
        for key in cluster:
            problem = problems_by_key[key]
            if problem.pair_ids is None:
                continue
            for record_a, record_b in problem.pair_ids:
                records.add(record_a)
                records.add(record_b)
        for record in records:
            reference[record] = reference.get(record, 0) + 1
    assert counts == reference


def test_morer_sel_cov_search_consistent_after_retraining():
    """After Eq. 14 retraining, repository search must reflect the new
    representative (stale-signature regression test)."""
    family = [make_problem(f"S{i}", f"T{i}", seed=i) for i in range(4)]
    morer = MoRER(b_total=80, b_min=10, selection="cov", t_cov=0.05,
                  random_state=0)
    morer.fit(family)
    retrained = False
    for i in range(3):
        probe = make_problem(f"X{i}", f"Y{i}", seed=50 + i)
        result = morer.solve(probe)
        retrained = retrained or result.retrained
    probe = make_problem("Z", "W", seed=99)
    entry, similarity = morer.repository.search(probe)
    raw = morer.test.problem_similarity(
        probe.features, entry.training_features
    )
    assert abs(similarity - raw) < TOLERANCE
