"""String/numeric similarity tests (scipy-free, exact known values)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.similarity import (
    ComparisonSchema,
    FeatureSpec,
    TfidfVectorizer,
    cosine_similarity,
    dice,
    exact_match,
    jaccard,
    jaro_similarity,
    jaro_winkler,
    levenshtein_distance,
    levenshtein_similarity,
    monge_elkan,
    normalize,
    normalized_difference,
    overlap_coefficient,
    padded_qgrams,
    parse_number,
    prefix_similarity,
    qgram_jaccard,
    qgrams,
    relative_difference,
    tfidf_cosine,
    word_tokens,
    year_similarity,
)

TEXT_STRATEGY = st.text(
    alphabet="abcdefghij 0123456789", min_size=0, max_size=20
)


# -- tokenisation -----------------------------------------------------------------


def test_normalize_lowercases_and_strips():
    assert normalize("  Ultra-HD  TV! ") == "ultra hd tv"
    assert normalize(None) == ""
    assert normalize(42) == "42"


def test_word_tokens():
    assert word_tokens("Samsung UN55TU8000") == ["samsung", "un55tu8000"]
    assert word_tokens("") == []


def test_qgrams_short_string():
    assert qgrams("ab", 2) == ["ab"]
    assert qgrams("a", 2) == ["a"]
    assert qgrams("", 2) == []


def test_padded_qgrams_cover_boundaries():
    grams = padded_qgrams("ab", 2)
    assert grams[0].startswith("#") and grams[-1].endswith("#")


# -- string similarities ---------------------------------------------------------


def test_exact_match():
    assert exact_match("TV  55", "tv 55") == 1.0
    assert exact_match("a", "b") == 0.0
    assert exact_match(None, "") == 1.0


def test_jaccard_known_value():
    # tokens: {ultra, hd, tv} vs {ultra, tv} -> 2/3
    assert jaccard("ultra hd tv", "ultra tv") == pytest.approx(2 / 3)


def test_dice_and_overlap_known_values():
    assert dice("a b", "b c") == pytest.approx(0.5)
    assert overlap_coefficient("a b", "b") == pytest.approx(1.0)


def test_levenshtein_distance_textbook():
    assert levenshtein_distance("kitten", "sitting") == 3
    assert levenshtein_distance("", "abc") == 3
    assert levenshtein_distance("abc", "abc") == 0


def test_levenshtein_similarity_bounds():
    assert levenshtein_similarity("abc", "abc") == 1.0
    assert levenshtein_similarity("abc", "xyz") == 0.0


def test_jaro_textbook_values():
    assert jaro_similarity("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)
    assert jaro_similarity("dixon", "dicksonx") == pytest.approx(0.7667, abs=1e-3)


def test_jaro_winkler_textbook_value():
    assert jaro_winkler("martha", "marhta") == pytest.approx(0.9611, abs=1e-3)


def test_jaro_winkler_prefix_boost():
    assert jaro_winkler("prefixxyz", "prefixabc") > jaro_similarity(
        "prefixxyz", "prefixabc"
    )


def test_monge_elkan_asymmetry_and_range():
    value = monge_elkan("canon eos", "canon eos 70d kit")
    assert 0.9 < value <= 1.0


def test_qgram_jaccard_typo_tolerance():
    assert qgram_jaccard("thinkpad", "thinkpda") > jaccard(
        "thinkpad", "thinkpda"
    )


def test_prefix_similarity():
    assert prefix_similarity("samsung tv", "samsung soundbar") == 1.0
    assert prefix_similarity("lg tv", "samsung tv") == 0.0


@settings(max_examples=60, deadline=None)
@given(TEXT_STRATEGY, TEXT_STRATEGY)
def test_similarities_bounded_and_symmetric(a, b):
    """Property: all similarities live in [0,1]; set-based + edit-based
    ones are symmetric; identity gives 1."""
    for func in (jaccard, dice, overlap_coefficient, levenshtein_similarity,
                 qgram_jaccard, jaro_similarity, jaro_winkler):
        value = func(a, b)
        assert 0.0 <= value <= 1.0 + 1e-12
        assert func(a, b) == pytest.approx(func(b, a))
        assert func(a, a) == pytest.approx(1.0)


@settings(max_examples=40, deadline=None)
@given(TEXT_STRATEGY, TEXT_STRATEGY, TEXT_STRATEGY)
def test_levenshtein_triangle_inequality(a, b, c):
    """Property: edit distance satisfies the triangle inequality."""
    assert levenshtein_distance(a, c) <= (
        levenshtein_distance(a, b) + levenshtein_distance(b, c)
    )


# -- numeric comparisons -------------------------------------------------------------


def test_parse_number_formats():
    assert parse_number("1,299.00") == pytest.approx(1299.0)
    assert parse_number("price: 42 usd") == 42.0
    assert parse_number("n/a") is None
    assert parse_number(None) is None
    assert parse_number(3.5) == 3.5


def test_normalized_difference():
    assert normalized_difference(100, 100) == 1.0
    assert normalized_difference(100, 50) == pytest.approx(0.5)
    assert normalized_difference(None, None) == 1.0
    assert normalized_difference(None, 5) == 0.0
    assert normalized_difference(0, 0) == 1.0


def test_relative_difference_tolerance_band():
    assert relative_difference(100, 105, tolerance=0.1) == 1.0
    assert relative_difference(100, 200, tolerance=0.1) < 0.6


def test_year_similarity():
    assert year_similarity(2000, 2000) == 1.0
    assert year_similarity(2000, 2005, max_gap=10) == pytest.approx(0.5)
    assert year_similarity(2000, 2020, max_gap=10) == 0.0


# -- tf-idf -----------------------------------------------------------------------


def test_tfidf_identical_texts_cosine_one():
    sims = tfidf_cosine(["canon eos camera"], ["canon eos camera"])
    assert sims[0] == pytest.approx(1.0)


def test_tfidf_disjoint_texts_cosine_zero():
    sims = tfidf_cosine(["alpha beta"], ["gamma delta"])
    assert sims[0] == pytest.approx(0.0)


def test_tfidf_vectorizer_shapes_and_norms():
    texts = ["a b c", "a b", "c d e", "f"]
    matrix = TfidfVectorizer().fit_transform(texts)
    assert matrix.shape[0] == 4
    norms = np.linalg.norm(matrix, axis=1)
    assert np.all((norms > 0.99) | (norms == 0.0))


def test_tfidf_max_features_caps_vocabulary():
    texts = ["a b c d e f g h", "a b"]
    vectorizer = TfidfVectorizer(max_features=3).fit(texts)
    assert len(vectorizer.vocabulary_) == 3


def test_tfidf_empty_corpus_raises():
    with pytest.raises(ValueError, match="zero documents"):
        TfidfVectorizer().fit([])


def test_cosine_similarity_zero_vector():
    assert cosine_similarity([0, 0], [1, 1]) == 0.0


# -- comparison schema -----------------------------------------------------------


def test_schema_compare_produces_expected_features():
    schema = ComparisonSchema([
        FeatureSpec("title", "jaccard"),
        FeatureSpec("price", "numeric"),
    ])
    vector = schema.compare(
        {"title": "ultra hd tv", "price": 100},
        {"title": "ultra tv", "price": 50},
    )
    assert vector[0] == pytest.approx(2 / 3)
    assert vector[1] == pytest.approx(0.5)
    assert schema.feature_names == ["jaccard(title)", "numeric(price)"]


def test_schema_missing_attribute_is_zero_similarity():
    schema = ComparisonSchema([FeatureSpec("brand", "jaro_winkler")])
    vector = schema.compare({"brand": "sony"}, {})
    assert vector[0] == 0.0


def test_schema_custom_callable():
    schema = ComparisonSchema([
        FeatureSpec("x", lambda a, b: 0.25, name="constant"),
    ])
    assert schema.compare({"x": 1}, {"x": 2})[0] == 0.25
    assert schema.feature_names == ["constant"]


def test_schema_duplicate_names_rejected():
    with pytest.raises(ValueError, match="duplicate"):
        ComparisonSchema([
            FeatureSpec("a", "jaccard"), FeatureSpec("a", "jaccard"),
        ])


def test_schema_unknown_function_rejected():
    with pytest.raises(ValueError, match="unknown similarity"):
        ComparisonSchema([FeatureSpec("a", "nope")])


def test_schema_compare_pairs_matrix():
    schema = ComparisonSchema([FeatureSpec("t", "jaccard")])
    matrix = schema.compare_pairs(
        [({"t": "a"}, {"t": "a"}), ({"t": "a"}, {"t": "b"})]
    )
    assert matrix.shape == (2, 1)
    assert matrix[0, 0] == 1.0 and matrix[1, 0] == 0.0
