"""Sketch index tests: layout, lifecycle, queries, repository wiring."""

import numpy as np
import pytest

from repro.core import (
    ModelRepository,
    ProblemSignature,
    SketchIndex,
    sketch_vector,
)
from repro.ml import RandomForestClassifier
from tests.conftest import make_problem, make_problem_family

TOLERANCE = 1e-9


def _signature(seed, n=40, n_features=3, loc=None):
    rng = np.random.default_rng(seed)
    loc = 0.2 + 0.6 * ((seed % 7) / 6.0) if loc is None else loc
    return ProblemSignature(
        np.clip(rng.normal(loc, 0.1, (n, n_features)), 0, 1)
    )


# -- sketch vectors ----------------------------------------------------------------


def test_sketch_vector_layout():
    signature = _signature(0, n=50, n_features=3)
    vector = sketch_vector(signature, n_bins=8)
    assert vector.shape == (3 * (8 + 2),)
    cdfs = vector[:24].reshape(3, 8)
    # Histogram blocks are discretized CDFs: non-decreasing, ending at 1.
    assert np.all(np.diff(cdfs, axis=1) >= 0)
    assert np.allclose(cdfs[:, -1], 1.0)
    proportions = np.diff(cdfs, axis=1, prepend=0.0)
    assert np.allclose(
        proportions * signature.n_samples, signature.histogram(8)
    )
    assert np.allclose(vector[24:27], signature.means)
    assert np.allclose(vector[27:30], signature.stds)


def test_sketch_vector_accepts_raw_matrix():
    rng = np.random.default_rng(1)
    features = rng.random((30, 2))
    assert np.array_equal(
        sketch_vector(features, n_bins=4),
        sketch_vector(ProblemSignature(features), n_bins=4),
    )


# -- index lifecycle ---------------------------------------------------------------


def test_index_validation():
    with pytest.raises(ValueError, match="bins"):
        SketchIndex(n_bins=1)
    with pytest.raises(ValueError, match="metric"):
        SketchIndex(metric="cosine")
    with pytest.raises(ValueError, match="n_projections"):
        SketchIndex(n_projections=-1)
    with pytest.raises(ValueError, match="oversample"):
        SketchIndex(oversample=0)
    index = SketchIndex()
    index.add(0, _signature(0))
    with pytest.raises(ValueError, match="n_candidates"):
        index.query(_signature(1), 0)


def test_index_add_discard_contiguity():
    index = SketchIndex(n_bins=4)
    signatures = {i: _signature(i) for i in range(6)}
    for i, signature in signatures.items():
        index.add(i, signature)
    assert len(index) == 6 and index.dim == 3 * (4 + 2)
    # Discarding a middle row swaps the last row into the hole.
    assert index.discard(2)
    assert not index.discard(2)
    assert len(index) == 5 and 2 not in index
    assert set(index.ids()) == {0, 1, 3, 4, 5}
    # Every surviving row still holds its own sketch.
    for i in index.ids():
        row = index._rows[i]
        assert np.array_equal(
            index._matrix[row], index.sketch(signatures[i])
        )


def test_index_clear_releases_width():
    index = SketchIndex(n_bins=4)
    index.add(0, _signature(0, n_features=3))
    index.clear()
    assert len(index) == 0 and index.dim is None
    index.add(1, _signature(1, n_features=5))  # new width accepted
    assert index.dim == 5 * (4 + 2)


def test_index_refresh_overwrites_in_place():
    index = SketchIndex(n_bins=4)
    index.add(7, _signature(0))
    refreshed = _signature(1)
    index.add(7, refreshed)
    assert len(index) == 1
    assert np.array_equal(index._matrix[0], index.sketch(refreshed))


def test_index_grows_past_initial_capacity():
    index = SketchIndex(n_bins=2)
    signatures = {i: _signature(i, n=10, n_features=1) for i in range(200)}
    for i, signature in signatures.items():
        index.add(i, signature)
    assert len(index) == 200
    for i in (0, 63, 64, 199):
        row = index._rows[i]
        assert np.array_equal(
            index._matrix[row], index.sketch(signatures[i])
        )


def test_index_rejects_width_mismatch():
    index = SketchIndex(n_bins=4)
    index.add(0, _signature(0, n_features=3))
    with pytest.raises(ValueError, match="feature space"):
        index.add(1, _signature(1, n_features=5))
    with pytest.raises(ValueError, match="width"):
        index.query(_signature(1, n_features=5), 1)


@pytest.mark.parametrize("metric", ["l1", "l2"])
def test_index_query_matches_brute_force(metric):
    index = SketchIndex(n_bins=8, metric=metric)
    signatures = [_signature(i) for i in range(40)]
    for i, signature in enumerate(signatures):
        index.add(i, signature)
    probe = _signature(991, loc=0.45)
    probe_vector = index.sketch(probe)
    reference = []
    for i, signature in enumerate(signatures):
        delta = index.sketch(signature) - probe_vector
        distance = (
            np.abs(delta).sum() if metric == "l1" else float(delta @ delta)
        )
        reference.append((distance, i))
    expected = [i for _, i in sorted(reference)][:10]
    assert index.query(probe, 10) == expected
    # Asking for more than the index holds returns everything, nearest
    # first.
    assert index.query(probe, 100) == [i for _, i in sorted(reference)]
    assert index.query(probe, 1) == expected[:1]


def test_index_query_empty():
    assert SketchIndex().query(_signature(0), 5) == []


def test_index_auto_projections_engage_at_threshold():
    """n_projections='auto' must switch the prefilter on exactly when
    the entry count crosses auto_threshold, with width/oversample
    derived from the entry count, and stay a good approximation.

    Uses 32-bin sketches so the sketch dim (102) exceeds the derived
    width — narrow sketches deliberately never enable (see below)."""
    index = SketchIndex(n_bins=32, n_projections="auto", auto_threshold=64,
                        random_state=3)
    reference = SketchIndex(n_bins=32, n_projections=0)
    signatures = [_signature(i) for i in range(150)]
    for i, signature in enumerate(signatures[:63]):
        index.add(i, signature)
        reference.add(i, signature)
    assert index._projection is None  # still exact below the threshold
    for i, signature in enumerate(signatures[63:], start=63):
        index.add(i, signature)
        reference.add(i, signature)
    assert index._projection is not None
    width = index._projection.shape[1]
    assert width == SketchIndex.auto_projection_width(64, index.dim)
    assert 2 <= width <= index.dim
    assert index.oversample >= 4
    # Rows added after the switch are mirrored into the projected
    # matrix; earlier rows were projected in bulk at the switch.
    assert np.allclose(
        index._projected[:len(index)],
        index._matrix[:len(index)] @ index._projection,
    )
    probe = _signature(777, loc=0.5)
    exact_top = set(reference.query(probe, 10))
    approx_top = set(index.query(probe, 10))
    assert len(exact_top & approx_top) >= 6
    # Clearing resets the auto state: a refilled small index is exact.
    index.clear()
    index.add(0, signatures[0])
    assert index._projection is None
    # Narrow sketches (derived width >= dim) never enable: a square
    # projection only adds work and distance distortion.
    narrow = SketchIndex(n_bins=8, n_projections="auto", auto_threshold=64)
    for i, signature in enumerate(signatures):
        narrow.add(i, signature)
    assert narrow.dim == 30  # 3 features * (8 bins + 2 moments)
    assert SketchIndex.auto_projection_width(150, 30) == 30
    assert narrow._projection is None


def test_index_auto_projection_width_derivation():
    assert SketchIndex.auto_projection_width(10_000, 1_000) == max(
        32, int(8 * np.log2(10_000))
    )
    # Capped at the sketch width for narrow sketches.
    assert SketchIndex.auto_projection_width(10_000, 20) == 20
    with pytest.raises(ValueError, match="n_projections"):
        SketchIndex(n_projections="many")
    with pytest.raises(ValueError, match="auto_threshold"):
        SketchIndex(auto_threshold=0)


def test_index_projection_prefilter():
    """The random-projection path must stay a good approximation of the
    full-width scan (JL: distances are preserved in expectation)."""
    full = SketchIndex(n_bins=8)
    projected = SketchIndex(n_bins=8, n_projections=12, oversample=4,
                            random_state=3)
    signatures = [_signature(i) for i in range(150)]
    for i, signature in enumerate(signatures):
        full.add(i, signature)
        projected.add(i, signature)
    probe = _signature(555, loc=0.5)
    exact_top = set(full.query(probe, 10))
    approx_top = set(projected.query(probe, 10))
    assert len(exact_top & approx_top) >= 6
    # Below the oversample cutoff the projected index scans exactly.
    assert projected.query(probe, 100) == full.query(probe, 100)


# -- repository wiring -------------------------------------------------------------


def _scan_counting_repository(problems, **kwargs):
    """Repository whose test counts signature_similarity evaluations."""
    from repro.core import KolmogorovSmirnovTest

    class CountingKS(KolmogorovSmirnovTest):
        calls = 0

        def signature_similarity(self, a, b):
            CountingKS.calls += 1
            return super().signature_similarity(a, b)

        def signature_similarity_many(self, probe, signatures):
            CountingKS.calls += len(signatures)
            return super().signature_similarity_many(probe, signatures)

    repo = ModelRepository(CountingKS(), **kwargs)
    for problem in problems:
        repo.add_entry(
            {problem.key}, None, problem.features,
            np.zeros(problem.n_pairs, dtype=int),
        )
    return repo, CountingKS


def test_repository_auto_threshold_switches_paths():
    problems = [
        make_problem(f"S{i}", f"T{i}", shift=0.1 * (i % 4), seed=i)
        for i in range(12)
    ]
    repo, counter = _scan_counting_repository(
        problems, index_threshold=20, n_candidates=4
    )
    probe = make_problem("X", "Y", seed=99)
    repo.search(probe)
    assert counter.calls == 12  # below threshold: exact scan
    for i in range(12, 25):
        problem = make_problem(f"S{i}", f"T{i}", seed=i)
        repo.add_entry(
            {problem.key}, None, problem.features,
            np.zeros(problem.n_pairs, dtype=int),
        )
    counter.calls = 0
    repo.search(make_problem("X2", "Y2", seed=100))
    assert counter.calls == 4  # indexed: only the rerank slice
    counter.calls = 0
    repo.search(make_problem("X3", "Y3", seed=101), use_index=False)
    assert counter.calls == 25  # per-call override restores the scan


def test_repository_indexed_search_matches_exact_at_full_width():
    """With n_candidates covering the whole repository the indexed path
    must reproduce the exact ranking and similarities."""
    problems = [
        make_problem(f"S{i}", f"T{i}", shift=0.12 * (i % 3), seed=i)
        for i in range(30)
    ]
    repo = ModelRepository("ks", use_index=True)
    for problem in problems:
        repo.add_entry(
            {problem.key}, None, problem.features,
            np.zeros(problem.n_pairs, dtype=int),
        )
    for seed in range(3):
        probe = make_problem("X", "Y", shift=0.12 * seed, seed=60 + seed)
        exact = repo.search(probe, top_k=5, use_index=False)
        indexed = repo.search(probe, top_k=5, n_candidates=len(repo))
        assert [e.cluster_id for e, _ in exact] == [
            e.cluster_id for e, _ in indexed
        ]
        for (_, sim_a), (_, sim_b) in zip(exact, indexed):
            assert abs(sim_a - sim_b) < TOLERANCE


@pytest.mark.parametrize("name", ["wd", "psi", "c2st"])
def test_repository_indexed_search_other_tests(name):
    """The indexed path works for every distribution test, including
    the C2ST fallback without a many-kernel."""
    problems = [
        make_problem(f"S{i}", f"T{i}", shift=0.15 * (i % 3), seed=i)
        for i in range(12)
    ]
    repo = ModelRepository(name, use_index=True)
    for problem in problems:
        repo.add_entry(
            {problem.key}, None, problem.features,
            np.zeros(problem.n_pairs, dtype=int),
        )
    probe = make_problem("X", "Y", seed=77)
    entry, similarity = repo.search(probe, n_candidates=len(repo))
    exact_entry, exact_similarity = repo.search(probe, use_index=False)
    assert entry.cluster_id == exact_entry.cluster_id
    assert abs(similarity - exact_similarity) < TOLERANCE


def test_repository_use_index_validation():
    with pytest.raises(ValueError, match="use_index"):
        ModelRepository("ks", use_index="always")
    with pytest.raises(ValueError, match="index_threshold"):
        ModelRepository("ks", index_threshold=0)
    with pytest.raises(ValueError, match="n_candidates"):
        ModelRepository("ks", n_candidates=0)
    # Per-call overrides get the same validation as the constructor:
    # a truthy-but-invalid string must not silently enable the index.
    problem = make_problem()
    repo = ModelRepository("ks")
    repo.add_entry(
        {problem.key}, None, problem.features,
        np.zeros(problem.n_pairs, dtype=int),
    )
    with pytest.raises(ValueError, match="use_index"):
        repo.search(problem, use_index="never")
    with pytest.raises(ValueError, match="n_candidates"):
        repo.search(problem, n_candidates=-5)


def test_repository_save_load_preserves_index_settings(tmp_path):
    """Constructor-level index settings survive save/load even without
    a config (regression: exact-mode repositories silently reverted to
    'auto' and could serve approximate results after a reload)."""
    problems = make_problem_family(4)
    repo = ModelRepository(
        "ks", use_index=False, index_threshold=2, n_candidates=7,
        sketch_bins=8,
    )
    for problem in problems:
        model = RandomForestClassifier(n_estimators=3, random_state=0)
        model.fit(problem.features, problem.labels)
        repo.add_entry(
            {problem.key}, model, problem.features, problem.labels
        )
    repo.save(tmp_path / "store")
    loaded = ModelRepository.load(tmp_path / "store")
    assert loaded.use_index is False
    assert loaded.index_threshold == 2
    assert loaded.n_candidates == 7
    assert loaded._sketch_index.n_bins == 8


def test_repository_out_of_range_probe_falls_back_with_index():
    problems = make_problem_family(6)
    repo = ModelRepository("ks", use_index=True)
    for problem in problems:
        model = RandomForestClassifier(n_estimators=3, random_state=0)
        model.fit(problem.features, problem.labels)
        repo.add_entry(
            {problem.key}, model, problem.features, problem.labels
        )
    rng = np.random.default_rng(8)
    probe = rng.normal(1.5, 2.0, (40, 4))  # outside [0, 1]
    naive = ModelRepository("ks", use_signatures=False)
    for problem in problems:
        naive.add_entry(
            {problem.key}, None, problem.features, problem.labels
        )
    entry, similarity = repo.search(probe)
    naive_entry, naive_similarity = naive.search(probe)
    assert entry.cluster_id == naive_entry.cluster_id
    assert abs(similarity - naive_similarity) < TOLERANCE


def test_repository_load_rebuilds_sketch_index(tmp_path):
    """Loaded entries bypass add_entry; indexed search must still see
    every entry (regression: empty index -> empty search results)."""
    problems = make_problem_family(6)
    repo = ModelRepository("ks")
    for problem in problems:
        model = RandomForestClassifier(n_estimators=3, random_state=0)
        model.fit(problem.features, problem.labels)
        repo.add_entry(
            {problem.key}, model, problem.features, problem.labels
        )
    repo.save(tmp_path / "store")
    loaded = ModelRepository.load(tmp_path / "store")
    probe = make_problem("X", "Y", seed=3)
    indexed = loaded.search(probe, top_k=3, use_index=True,
                            n_candidates=len(loaded))
    exact = loaded.search(probe, top_k=3, use_index=False)
    assert len(indexed) == 3
    assert [e.cluster_id for e, _ in indexed] == [
        e.cluster_id for e, _ in exact
    ]
    assert len(loaded._sketch_index) == len(loaded)


def test_repository_save_load_persists_sketch_matrix(tmp_path):
    """save() writes the sketch matrix into vectors.npz and load()
    restores it, so cold-start indexed search skips the lazy rebuild
    (no sketch is re-derived from a signature)."""
    import repro.core.sketch_index as sketch_module

    problems = [
        make_problem(f"S{i}", f"T{i}", shift=0.1 * (i % 4), seed=i)
        for i in range(10)
    ]
    repo = ModelRepository("ks", use_index=True)
    for problem in problems:
        model = RandomForestClassifier(n_estimators=3, random_state=0)
        model.fit(problem.features, problem.labels)
        repo.add_entry(
            {problem.key}, model, problem.features, problem.labels
        )
    probe = make_problem("X", "Y", seed=5)
    expected = repo.search(probe, top_k=4)  # also syncs the index
    repo.save(tmp_path / "store")
    arrays = np.load(tmp_path / "store" / "vectors.npz")
    assert arrays["sketch_rows"].shape == (10, repo._sketch_index.dim)
    assert set(arrays["sketch_ids"]) == set(repo.entries)

    loaded = ModelRepository.load(tmp_path / "store")
    assert len(loaded._sketch_index) == 10
    assert not loaded._index_pending
    calls = []
    original = sketch_module.sketch_vector

    def spy(signature, n_bins=16):
        calls.append(signature)
        return original(signature, n_bins)

    sketch_module.sketch_vector = spy
    try:
        # The probe's own sketch is the only one computed.
        got = loaded.search(probe, top_k=4)
    finally:
        sketch_module.sketch_vector = original
    assert len(calls) == 1
    assert [e.cluster_id for e, _ in got] == [
        e.cluster_id for e, _ in expected
    ]
    for (_, sim_a), (_, sim_b) in zip(expected, got):
        assert abs(sim_a - sim_b) < TOLERANCE


def test_sketch_index_export_bulk_load_round_trip():
    index = SketchIndex(n_bins=4)
    signatures = {i: _signature(i) for i in range(8)}
    for i, signature in signatures.items():
        index.add(i, signature)
    index.discard(3)
    ids, rows = index.export_rows()
    restored = SketchIndex(n_bins=4)
    restored.bulk_load(ids, rows)
    assert restored.ids() == index.ids()
    probe = _signature(99, loc=0.5)
    assert restored.query(probe, 5) == index.query(probe, 5)
    with pytest.raises(ValueError, match="one sketch row per id"):
        restored.bulk_load([1, 2], rows)
    with pytest.raises(ValueError, match="unique"):
        restored.bulk_load([1] * len(ids), rows)
    # Empty payload resets to a fresh index.
    restored.bulk_load([], np.empty((0, 0)))
    assert len(restored) == 0 and restored.dim is None


def test_repository_remove_entry_evicts_sketch_row():
    problems = make_problem_family(6)
    repo = ModelRepository("ks", use_index=True)
    for problem in problems:
        repo.add_entry(
            {problem.key}, None, problem.features,
            np.zeros(problem.n_pairs, dtype=int),
        )
    repo.search(make_problem("X", "Y", seed=5))  # builds the index
    assert len(repo._sketch_index) == 6
    victim = next(iter(repo.entries))
    repo.remove_entry(victim)
    assert victim not in repo._sketch_index
    entry, _ = repo.search(make_problem("X2", "Y2", seed=6))
    assert entry.cluster_id != victim
    assert len(repo._sketch_index) == 5
